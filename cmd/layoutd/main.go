// Command layoutd serves the layout-optimization pipeline over HTTP:
// clients stream CLTR traces to it, it queues optimization jobs on a
// bounded worker pool, caches results by content address, and exposes
// plain-text metrics. With -store-dir the content-addressed cache is
// durable: completed layouts are written crash-safely to disk and
// survive restarts; disk failures degrade the daemon to memory-only
// (visible in /healthz and layoutd_store_state) instead of taking it
// down. See internal/server for the API surface and cmd/layoutctl for
// a client.
//
// Logs are structured JSON on stderr (one object per line); every
// job-scoped line carries the job's trace_id, correlating logs with
// the span timeline at /v1/jobs/{id}/trace and the summaries at
// /v1/debug/jobs.
//
// Usage:
//
//	layoutd -addr 127.0.0.1:8080 -jobs 4 -queue 64
//	layoutd -addr 127.0.0.1:0 -ready-file /tmp/layoutd.addr
//	layoutd -store-dir /var/lib/layoutd -store-max-bytes 1073741824
//	layoutd -log-level debug                                           # per-request detail
//	layoutd -debug-addr 127.0.0.1:6060                                 # net/http/pprof
//	layoutd -store-dir /tmp/s -fault-spec 'write:every=1,err=ENOSPC'   # smoke-test degraded mode
//	layoutd -node-id n1 -peers 'n1=http://127.0.0.1:8080,n2=http://127.0.0.1:8081,n3=http://127.0.0.1:8082' \
//	        -replicas 2 -store-dir /var/lib/layoutd-n1               # one member of a 3-node cluster
//
// With -peers, the daemon joins a static cluster: every digest has an
// owner chosen by rendezvous hashing, non-owners forward requests to
// it transparently, and completed results replicate to -replicas nodes
// so any member can serve any digest — including after the owner dies.
//
// On SIGTERM/SIGINT the daemon stops accepting work and drains queued
// and in-flight jobs, bounded by -drain-timeout; a drain that has to
// abandon wedged work exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"codelayout/internal/cluster"
	"codelayout/internal/fault"
	"codelayout/internal/obs"
	"codelayout/internal/server"
	"codelayout/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	jobs := flag.Int("jobs", 0, "concurrent optimization jobs: 0 = all cores")
	queue := flag.Int("queue", server.DefaultQueueDepth, "queued-job limit before submissions get 429")
	optWorkers := flag.Int("opt-workers", 1, "analysis concurrency inside one job: 0 = all cores")
	jobTimeout := flag.Duration("job-timeout", server.DefaultJobTimeout, "per-job deadline, queue wait included")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on draining in-flight jobs at shutdown")
	maxTrace := flag.Int64("max-trace-bytes", server.DefaultMaxTraceBytes, "upload size cap")
	jobTTL := flag.Duration("job-ttl", server.DefaultJobTTL, "retention of completed-job status records")
	maxJobs := flag.Int("max-jobs", server.DefaultMaxJobs, "tracked-job cap; oldest completed jobs evicted first")
	readyFile := flag.String("ready-file", "", "write the bound address to this file once listening")
	logLevel := flag.String("log-level", "info", "structured-log threshold: debug, info, warn, or error")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	spanBuffer := flag.Int("span-buffer", 0, "per-job trace span capacity (0 = default; overflow counted in layoutd_spans_dropped_total)")
	storeDir := flag.String("store-dir", "", "directory for the durable result store (empty = memory-only)")
	storeMaxBytes := flag.Int64("store-max-bytes", store.DefaultMaxBytes, "LRU byte bound on the durable store")
	storeQueue := flag.Int("store-queue", store.DefaultQueueDepth, "write-behind queue depth of the durable store")
	faultSpec := flag.String("fault-spec", "", "DEBUG: inject store filesystem faults, e.g. 'write:every=1,err=ENOSPC' (requires -store-dir)")
	traceCache := flag.Int("trace-cache", server.DefaultTraceCacheEntries, "decoded traces retained in memory for /v1/corun and /v1/schedule replay")
	maxSchedule := flag.Int("max-schedule", server.DefaultMaxScheduleDigests, "layout digests accepted per /v1/schedule request")
	streamWindow := flag.Int64("stream-window", server.DefaultStreamWindow, "decoded-trace bytes buffered per streamed submission; 0 disables analyze-while-uploading")
	uploadDir := flag.String("upload-dir", "", "directory for resumable-upload spools (empty = uploads disabled)")
	uploadMaxSessions := flag.Int("upload-sessions", store.DefaultMaxUploadSessions, "concurrently open resumable-upload sessions")
	nodeID := flag.String("node-id", "", "this node's cluster ID (required with -peers)")
	peersSpec := flag.String("peers", "", "static cluster membership as comma-separated id=url pairs, self included, e.g. 'n1=http://127.0.0.1:8080,n2=http://127.0.0.1:8081'")
	replicas := flag.Int("replicas", 2, "nodes that should hold each blob, owner included (with -peers)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "peer /healthz poll period (with -peers)")
	antiEntropy := flag.Duration("antientropy", 30*time.Second, "anti-entropy repair sweep period, jittered ±25%; 0 disables (with -peers and -store-dir)")
	antiEntropyMax := flag.Int("antientropy-max", cluster.DefaultAntiEntropyMaxPerSweep, "repair pushes per anti-entropy sweep (rate limit)")
	eventRing := flag.Int("event-ring", server.DefaultEventRing, "state-transition events retained at /v1/debug/events")
	runtimeSample := flag.Duration("runtime-sample", obs.DefaultRuntimeSampleInterval, "runtime-telemetry sampler tick period (feeds layoutd_runtime_* and /v1/debug/runtime)")
	runtimeRing := flag.Int("runtime-ring", obs.DefaultRuntimeRing, "runtime-telemetry samples retained at /v1/debug/runtime")
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layoutd:", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	var st *store.Store
	if *storeDir != "" {
		storeLog := logger.With("subsys", "store")
		scfg := store.Config{
			Dir:        *storeDir,
			MaxBytes:   *storeMaxBytes,
			QueueDepth: *storeQueue,
			Logf: func(format string, args ...any) {
				storeLog.Info(fmt.Sprintf(format, args...))
			},
		}
		if *faultSpec != "" {
			rules, err := fault.ParseSpec(*faultSpec)
			if err != nil {
				fatal("bad -fault-spec", err)
			}
			logger.Warn("DEBUG: store filesystem faults active", "spec", *faultSpec)
			scfg.FS = fault.NewInjector(fault.OS(), rules...)
		}
		var err error
		st, err = store.Open(scfg)
		if err != nil {
			// A broken store directory must not take the service down:
			// run memory-only, exactly like the degraded mode a runtime
			// failure produces.
			logger.Warn("durable store disabled (running memory-only)", "err", err)
		} else {
			stats := st.Stats()
			logger.Info("durable store opened", "dir", *storeDir,
				"blobs", stats.Blobs, "bytes", stats.Bytes, "quarantined", stats.Quarantined)
		}
	} else if *faultSpec != "" {
		fatal("flag error", errors.New("-fault-spec requires -store-dir"))
	}

	var uploads *store.Uploads
	if *uploadDir != "" {
		uploadLog := logger.With("subsys", "uploads")
		uploads, err = store.OpenUploads(store.UploadsConfig{
			Dir:         *uploadDir,
			MaxBytes:    *maxTrace,
			MaxSessions: *uploadMaxSessions,
			Logf: func(format string, args ...any) {
				uploadLog.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fatal("upload spool", err)
		}
		logger.Info("resumable uploads enabled", "dir", *uploadDir,
			"max_sessions", *uploadMaxSessions, "recovered", uploads.Recovered())
	}

	var cl *cluster.Cluster
	if *peersSpec != "" {
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			fatal("bad -peers", err)
		}
		clusterLog := logger.With("subsys", "cluster")
		cl, err = cluster.New(cluster.Config{
			SelfID:                 *nodeID,
			Peers:                  peers,
			ReplicationFactor:      *replicas,
			HealthInterval:         *healthInterval,
			AntiEntropyInterval:    *antiEntropy,
			AntiEntropyMaxPerSweep: *antiEntropyMax,
			Logf: func(format string, args ...any) {
				clusterLog.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			fatal("cluster setup", err)
		}
		logger.Info("cluster member", "node_id", *nodeID,
			"peers", len(peers), "replicas", cl.ReplicationFactor(),
			"antientropy", antiEntropy.String())
	} else if *nodeID != "" {
		logger.Info("running single-node", "node_id", *nodeID)
	}

	if *debugAddr != "" {
		// pprof lives on its own listener so profiling endpoints are
		// never exposed on the service address.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal("debug listener", err)
		}
		logger.Info("pprof debug server listening", "addr", dln.Addr().String())
		go func() {
			if err := http.Serve(dln, http.DefaultServeMux); err != nil {
				logger.Error("debug server exited", "err", err)
			}
		}()
	}

	if err := run(logger, *addr, *readyFile, *drainTimeout, server.Config{
		JobWorkers:     *jobs,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		OptWorkers:     *optWorkers,
		MaxTraceBytes:  *maxTrace,
		JobTTL:         *jobTTL,
		MaxJobs:        *maxJobs,
		Store:          st,
		Logger:         logger,
		SpanBufferSize: *spanBuffer,

		TraceCacheEntries:  *traceCache,
		MaxScheduleDigests: *maxSchedule,

		StreamWindow: *streamWindow,
		Uploads:      uploads,

		Cluster: cl,
		NodeID:  *nodeID,

		EventRing:             *eventRing,
		RuntimeSampleInterval: *runtimeSample,
		RuntimeRing:           *runtimeRing,
	}); err != nil {
		fatal("layoutd exited", err)
	}
}

// parsePeers turns 'id=url,id=url,...' into the static peer set.
func parsePeers(spec string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("peer %q: want id=url", part)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: strings.TrimRight(u, "/")})
	}
	return peers, nil
}

func parseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", s)
}

func run(logger *slog.Logger, addr, readyFile string, drainTimeout time.Duration, cfg server.Config) error {
	s := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String())
	if readyFile != "" {
		if err := os.WriteFile(readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	logger.Info("signal received; draining", "bound", drainTimeout.String())

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("http shutdown", "err", err)
	}
	if err := s.Shutdown(drainCtx); err != nil {
		// Wedged workers were abandoned: surface it to the supervisor.
		return err
	}
	logger.Info("drained cleanly")
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
