package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFeedPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		p := NewFeedPool(context.Background(), workers)
		var mu sync.Mutex
		got := make(map[int]bool)
		for i := 0; i < 100; i++ {
			i := i
			if err := p.Submit(func(context.Context) error {
				mu.Lock()
				got[i] = true
				mu.Unlock()
				return nil
			}); err != nil {
				t.Fatalf("workers=%d: Submit(%d): %v", workers, i, err)
			}
		}
		if err := p.Wait(); err != nil {
			t.Fatalf("workers=%d: Wait: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: ran %d tasks, want 100", workers, len(got))
		}
	}
}

func TestFeedPoolSerialRunsInline(t *testing.T) {
	p := NewFeedPool(context.Background(), 1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := p.Submit(func(context.Context) error {
			order = append(order, i) // no lock: inline means same goroutine
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", order)
		}
	}
}

// TestFeedPoolEarliestError: when several tasks fail, Wait reports the
// earliest-submitted failure — the same deterministic choice ForEachCtx
// makes — no matter the completion order.
func TestFeedPoolEarliestError(t *testing.T) {
	p := NewFeedPool(context.Background(), 4)
	err1 := fmt.Errorf("task 1 failed")
	err5 := fmt.Errorf("task 5 failed")
	fiveDone := make(chan struct{})
	for i := 0; i < 6; i++ {
		i := i
		if err := p.Submit(func(context.Context) error {
			switch i {
			case 1:
				<-fiveDone // fail strictly after task 5 already failed
				return err1
			case 5:
				defer close(fiveDone)
				return err5
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Wait(); !errors.Is(err, err1) {
		t.Fatalf("Wait = %v, want the earliest-submitted failure %v", err, err1)
	}
}

func TestFeedPoolSubmitAfterFailureReturnsError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewFeedPool(context.Background(), workers)
		boom := errors.New("boom")
		_ = p.Submit(func(context.Context) error { return boom })
		// Give the failure time to land for the concurrent pool.
		deadline := time.Now().Add(2 * time.Second)
		var err error
		for time.Now().Before(deadline) {
			err = p.Submit(func(context.Context) error { return nil })
			if err != nil {
				break
			}
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Submit after failure = %v, want boom", workers, err)
		}
		if err := p.Wait(); !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Wait = %v, want boom", workers, err)
		}
	}
}

func TestFeedPoolContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewFeedPool(ctx, 2)
	started := make(chan struct{})
	var once sync.Once
	_ = p.Submit(func(ctx context.Context) error {
		once.Do(func() { close(started) })
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	cancel()
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if err := p.Submit(func(context.Context) error { return nil }); err == nil {
		t.Fatal("Submit after cancel succeeded")
	}
}

// TestFeedPoolBoundsInFlight: Submit must block once 2×workers tasks
// are in flight — the backpressure that bounds a streaming producer's
// memory.
func TestFeedPoolBoundsInFlight(t *testing.T) {
	const workers = 2
	p := NewFeedPool(context.Background(), workers)
	var running atomic.Int64
	block := make(chan struct{})
	for i := 0; i < 2*workers; i++ {
		if err := p.Submit(func(context.Context) error {
			running.Add(1)
			<-block
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	extra := make(chan error, 1)
	go func() {
		extra <- p.Submit(func(context.Context) error { return nil })
	}()
	select {
	case <-extra:
		t.Fatal("Submit did not block with 2*workers tasks in flight")
	case <-time.After(100 * time.Millisecond):
	}
	if got := running.Load(); got > workers {
		t.Fatalf("%d tasks executing concurrently, want <= %d", got, workers)
	}
	close(block)
	if err := <-extra; err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}
