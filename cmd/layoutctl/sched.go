package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"codelayout/internal/textplot"
)

// parseCacheGeometry turns "sizeBytes/assoc/lineBytes" (e.g. "32768/4/64")
// into the server's cache-config JSON object; "" means server default.
func parseCacheGeometry(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "/")
	if len(parts) != 3 {
		return nil, fmt.Errorf("cache geometry %q: want sizeBytes/assoc/lineBytes", s)
	}
	vals := make([]int, 3)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("cache geometry %q: bad field %q", s, p)
		}
		vals[i] = v
	}
	return map[string]int{"SizeBytes": vals[0], "Assoc": vals[1], "LineBytes": vals[2]}, nil
}

// postJob POSTs a JSON body to path and waits for the resulting async
// job, returning the final job document. Cache hits come back already
// done; otherwise the job is polled like -submit -wait.
func postJob(r *retrier, base, path string, body any, timeout time.Duration) (jobView, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return jobView{}, nil, err
	}
	resp, err := r.Do("POST "+path, func() (*http.Response, error) {
		return http.Post(base+path, "application/json", bytes.NewReader(data))
	})
	if err != nil {
		return jobView{}, nil, err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return jobView{}, nil, fmt.Errorf("POST %s: %s: %s", path, resp.Status, strings.TrimSpace(string(raw)))
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		return jobView{}, nil, fmt.Errorf("POST %s: bad response %q: %w", path, raw, err)
	}
	deadline := time.Now().Add(timeout)
	for {
		switch v.Status {
		case "done":
			return v, raw, nil
		case "failed":
			return v, raw, fmt.Errorf("job %s failed: %s", v.ID, v.Error)
		case "canceled":
			return v, raw, fmt.Errorf("job %s was canceled", v.ID)
		}
		if !time.Now().Before(deadline) {
			return v, raw, fmt.Errorf("job %s still not finished after %s", v.ID, timeout)
		}
		time.Sleep(200 * time.Millisecond)
		v, raw, err = getJob(r, base, v.ID)
		if err != nil {
			return jobView{}, nil, err
		}
	}
}

// pairSide mirrors the server's PairSide wire format, loosely.
type pairSide struct {
	Digest        string  `json:"digest"`
	Prog          string  `json:"prog"`
	Optimizer     string  `json:"optimizer"`
	MissSolo      float64 `json:"missSolo"`
	MissCorun     float64 `json:"missCorun"`
	Contention    float64 `json:"contention"`
	Defensiveness float64 `json:"defensiveness"`
	Politeness    float64 `json:"politeness"`
	PredMissRatio float64 `json:"predMissRatio"`
	PredMisses    float64 `json:"predMisses"`
}

// corunView mirrors the server's CorunDoc wire format, loosely.
type corunView struct {
	Digest   string   `json:"digest"`
	A        pairSide `json:"a"`
	B        pairSide `json:"b"`
	PairCost float64  `json:"pairCost"`
}

func doCorun(r *retrier, base, pair, cacheGeom string, timeout time.Duration, jsonOut bool) error {
	digests := splitDigests(pair)
	if len(digests) != 2 {
		fmt.Fprintln(os.Stderr, "layoutctl: -corun wants exactly two comma-separated layout digests")
		os.Exit(2)
	}
	cache, err := parseCacheGeometry(cacheGeom)
	if err != nil {
		return err
	}
	body := map[string]any{"a": digests[0], "b": digests[1]}
	if cache != nil {
		body["cache"] = cache
	}
	v, raw, err := postJob(r, base, "/v1/corun", body, timeout)
	if err != nil {
		return err
	}
	if jsonOut {
		os.Stdout.Write(append(raw, '\n'))
		return nil
	}
	var wrap struct {
		Corun corunView `json:"corun"`
	}
	if err := json.Unmarshal(raw, &wrap); err != nil {
		return fmt.Errorf("corun: bad response %q: %w", raw, err)
	}
	doc := wrap.Corun
	fmt.Printf("pair %s cached=%v\n\n", doc.Digest, v.Cached)
	const row = "%-14s %12s %12s\n"
	label := func(s pairSide) string { return s.Prog + "/" + s.Optimizer }
	fmt.Printf(row, "", label(doc.A), label(doc.B))
	pct := func(f float64) string { return fmt.Sprintf("%.4f%%", f*100) }
	fmt.Printf(row, "miss solo", pct(doc.A.MissSolo), pct(doc.B.MissSolo))
	fmt.Printf(row, "miss corun", pct(doc.A.MissCorun), pct(doc.B.MissCorun))
	fmt.Printf(row, "contention", pct(doc.A.Contention), pct(doc.B.Contention))
	fmt.Printf(row, "defensiveness", pct(doc.A.Defensiveness), pct(doc.B.Defensiveness))
	fmt.Printf(row, "politeness", pct(doc.A.Politeness), pct(doc.B.Politeness))
	fmt.Printf(row, "pred misses",
		fmt.Sprintf("%.0f", doc.A.PredMisses), fmt.Sprintf("%.0f", doc.B.PredMisses))
	fmt.Printf("\npair cost (Eq-1 predicted co-run misses): %.0f\n", doc.PairCost)
	return nil
}

// scheduleView mirrors the server's ScheduleDoc wire format, loosely.
type scheduleView struct {
	Digest    string      `json:"digest"`
	Labels    []string    `json:"labels"`
	Matrix    [][]float64 `json:"matrix"`
	Placement struct {
		Domains [][]int `json:"domains"`
		Cost    float64 `json:"cost"`
		Exact   bool    `json:"exact"`
	} `json:"placement"`
	WorstCost     float64 `json:"worstCost"`
	WorstKnown    bool    `json:"worstKnown"`
	PairsComputed int     `json:"pairsComputed"`
	PairsCached   int     `json:"pairsCached"`
}

func doSchedule(r *retrier, base, list string, domains, slots int, cacheGeom string, timeout time.Duration, jsonOut bool) error {
	digests := splitDigests(list)
	if len(digests) < 2 {
		fmt.Fprintln(os.Stderr, "layoutctl: -schedule wants at least two comma-separated layout digests")
		os.Exit(2)
	}
	if domains <= 0 || slots <= 0 {
		fmt.Fprintln(os.Stderr, "layoutctl: -schedule requires -domains and -slots")
		os.Exit(2)
	}
	cache, err := parseCacheGeometry(cacheGeom)
	if err != nil {
		return err
	}
	body := map[string]any{
		"digests":  digests,
		"topology": map[string]int{"domains": domains, "slotsPerDomain": slots},
	}
	if cache != nil {
		body["cache"] = cache
	}
	v, raw, err := postJob(r, base, "/v1/schedule", body, timeout)
	if err != nil {
		return err
	}
	if jsonOut {
		os.Stdout.Write(append(raw, '\n'))
		return nil
	}
	var wrap struct {
		Schedule scheduleView `json:"schedule"`
	}
	if err := json.Unmarshal(raw, &wrap); err != nil {
		return fmt.Errorf("schedule: bad response %q: %w", raw, err)
	}
	doc := wrap.Schedule
	fmt.Printf("schedule %s cached=%v (%d pairs simulated, %d from cache)\n\n",
		doc.Digest, v.Cached, doc.PairsComputed, doc.PairsCached)
	m := textplot.Matrix{
		Title:  "pairwise interference (Eq-1 predicted co-run misses)",
		Labels: shortLabels(doc.Labels),
		Cells:  doc.Matrix,
		Format: "%.0f",
	}
	os.Stdout.WriteString(m.String())
	mode := "heuristic"
	if doc.Placement.Exact {
		mode = "exact"
	}
	fmt.Printf("\nplacement (%s, total cost %.0f):\n", mode, doc.Placement.Cost)
	for i, dom := range doc.Placement.Domains {
		names := make([]string, len(dom))
		for k, idx := range dom {
			names[k] = fmt.Sprintf("#%d %s", idx, doc.Labels[idx])
		}
		fmt.Printf("  domain %d: %s\n", i, strings.Join(names, ", "))
	}
	if doc.WorstKnown && doc.WorstCost > 0 {
		fmt.Printf("worst-case pairing cost %.0f; placement saves %.1f%%\n",
			doc.WorstCost, 100*(doc.WorstCost-doc.Placement.Cost)/doc.WorstCost)
	}
	return nil
}

// splitDigests splits a comma-separated digest list, trimming blanks.
func splitDigests(s string) []string {
	var out []string
	for _, d := range strings.Split(s, ",") {
		if d = strings.TrimSpace(d); d != "" {
			out = append(out, d)
		}
	}
	return out
}

// shortLabels truncates labels for matrix column headers.
func shortLabels(labels []string) []string {
	out := make([]string, len(labels))
	for i, l := range labels {
		if len(l) > 16 {
			l = l[:16]
		}
		out[i] = l
	}
	return out
}

// doPairDoc fetches a cached pair document by digest.
func doPairDoc(r *retrier, base, digest string) error {
	return printGET(r, base+"/v1/corun/"+url.PathEscape(digest))
}
