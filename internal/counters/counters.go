// Package counters is the PAPI-style hardware-counter facade of the
// evaluation: the paper "use[s] PAPI libraries to measure the
// instruction cache miss ratios using hardware performance counters".
// Here the counters read out of the cpu package's core model, exposing
// the familiar event names so the experiment harness reads like the
// paper's methodology.
package counters

import (
	"fmt"

	"codelayout/internal/cpu"
)

// PAPI-style event names.
const (
	TotIns = "PAPI_TOT_INS" // instructions completed
	TotCyc = "PAPI_TOT_CYC" // total cycles
	L1ICA  = "PAPI_L1_ICA"  // L1 instruction cache accesses
	L1ICM  = "PAPI_L1_ICM"  // L1 instruction cache misses
	L2ICA  = "PAPI_L2_ICA"  // L2 accesses from instruction fetch
	L2ICM  = "PAPI_L2_ICM"  // L2 misses from instruction fetch
	StlIcy = "PAPI_STL_ICY" // cycles with no instruction issue (stalls)
)

// Set is one thread's counter readout.
type Set struct {
	values map[string]int64
}

// FromThread captures the counters of one simulated hardware thread.
func FromThread(r cpu.ThreadResult) *Set {
	return &Set{values: map[string]int64{
		TotIns: r.Instrs,
		TotCyc: r.Cycles,
		L1ICA:  r.L1I.Accesses,
		L1ICM:  r.L1I.Misses,
		L2ICA:  r.L2.Accesses,
		L2ICM:  r.L2.Misses,
		StlIcy: r.FetchStallCycles + r.DataStallCycles,
	}}
}

// Read returns the value of a counter.
func (s *Set) Read(event string) (int64, error) {
	v, ok := s.values[event]
	if !ok {
		return 0, fmt.Errorf("counters: unknown event %q", event)
	}
	return v, nil
}

// MustRead is Read that panics on unknown events; for the harness.
func (s *Set) MustRead(event string) int64 {
	v, err := s.Read(event)
	if err != nil {
		panic(err)
	}
	return v
}

// ICacheMissRatio returns L1ICM / L1ICA, the paper's headline metric.
func (s *Set) ICacheMissRatio() float64 {
	a := s.values[L1ICA]
	if a == 0 {
		return 0
	}
	return float64(s.values[L1ICM]) / float64(a)
}

// CPI returns cycles per instruction.
func (s *Set) CPI() float64 {
	i := s.values[TotIns]
	if i == 0 {
		return 0
	}
	return float64(s.values[TotCyc]) / float64(i)
}
