// Package progen generates the synthetic benchmark programs that stand
// in for SPEC CPU2006 (DESIGN.md §2). The generator reproduces the trace
// and layout properties that make code layout matter for the instruction
// cache:
//
//   - functions have a hot path interleaved (in source order) with cold
//     error-handling blocks, so the original layout wastes cache lines on
//     untouched bytes;
//   - execution proceeds in phases, each repeatedly calling a working
//     set of functions whose source order is shuffled, so temporally
//     related code is spatially scattered;
//   - some call-adjacent function pairs communicate through a global
//     register, making one function's executed half determine the
//     other's — the paper's Figure 3 pattern that only inter-procedural
//     basic-block reordering can exploit;
//   - shared helper functions are declared far from their callers.
//
// Everything is deterministic in Spec.Seed. The interpreter seed (the
// program "input") is separate: training runs use one input, evaluation
// runs another.
package progen

import (
	"fmt"
	"math/rand"

	"codelayout/internal/ir"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name string
	// Seed drives program structure generation (not execution).
	Seed int64

	// Funcs is the number of work functions (excluding main and
	// helpers).
	Funcs int
	// HotChain is the [min,max] number of hot-path blocks per function.
	HotChain [2]int
	// HotBytes is the [min,max] size of a hot block.
	HotBytes [2]int
	// ColdBytes is the [min,max] size of a cold block; one cold block
	// hangs off every hot block.
	ColdBytes [2]int
	// ColdProb is the probability a hot block's cold branch is taken.
	ColdProb float64
	// InnerTrips is the [min,max] iteration count of the loop inside
	// each work function. Intra-function loops are what keep real
	// programs' instruction miss ratios in the low percent range: most
	// fetches re-hit the current function's lines, and only the sweep
	// from function to function misses.
	InnerTrips [2]int

	// Phases is the number of execution phases.
	Phases int
	// FuncsPerPhase is the size of each phase's function working set.
	FuncsPerPhase int
	// PhaseLoops is the iteration count of each phase's outer loop.
	PhaseLoops int
	// CallsPerLoop is the number of calls per outer-loop iteration.
	CallsPerLoop int

	// CorrelatedFrac is the fraction of call-adjacent pairs coupled
	// through a global register (Figure 3 pattern).
	CorrelatedFrac float64
	// Helpers is the number of shared helper functions; 0 disables.
	Helpers int
	// HelperProb is the probability a hot block calls a helper.
	HelperProb float64

	// DataCPI is the program's data-side stall contribution.
	DataCPI float64
}

// Validate checks the spec for generability.
func (s Spec) Validate() error {
	switch {
	case s.Funcs < 1:
		return fmt.Errorf("progen %s: Funcs %d < 1", s.Name, s.Funcs)
	case s.HotChain[0] < 1 || s.HotChain[1] < s.HotChain[0]:
		return fmt.Errorf("progen %s: bad HotChain %v", s.Name, s.HotChain)
	case s.HotBytes[0] < 4 || s.HotBytes[1] < s.HotBytes[0]:
		return fmt.Errorf("progen %s: bad HotBytes %v", s.Name, s.HotBytes)
	case s.ColdBytes[0] < 4 || s.ColdBytes[1] < s.ColdBytes[0]:
		return fmt.Errorf("progen %s: bad ColdBytes %v", s.Name, s.ColdBytes)
	case s.ColdProb < 0 || s.ColdProb > 1:
		return fmt.Errorf("progen %s: bad ColdProb %v", s.Name, s.ColdProb)
	case s.Phases < 1 || s.PhaseLoops < 1 || s.CallsPerLoop < 1:
		return fmt.Errorf("progen %s: bad phase structure", s.Name)
	case s.FuncsPerPhase < 1 || s.FuncsPerPhase > s.Funcs:
		return fmt.Errorf("progen %s: FuncsPerPhase %d out of [1,%d]", s.Name, s.FuncsPerPhase, s.Funcs)
	case s.InnerTrips[0] < 1 || s.InnerTrips[1] < s.InnerTrips[0]:
		return fmt.Errorf("progen %s: bad InnerTrips %v", s.Name, s.InnerTrips)
	}
	return nil
}

// Generate builds the program for the spec.
func Generate(s Spec) (*ir.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	g := &gen{spec: s, rng: rng}
	return g.build()
}

// MustGenerate is Generate that panics on invalid specs; the named
// suites are valid by construction.
func MustGenerate(s Spec) *ir.Program {
	p, err := Generate(s)
	if err != nil {
		panic(err)
	}
	return p
}

type gen struct {
	spec Spec
	rng  *rand.Rand

	b *ir.Builder
	// workFB[i] is the FuncBuilder of logical work function i (call
	// order); their declaration (source) order is shuffled.
	workFB []*ir.FuncBuilder
	// correlated[i] is true when logical functions i and i+1 are
	// coupled through global register globalOf[i].
	correlated []bool
	globalOf   []int32
	helpers    []*ir.FuncBuilder
}

func (g *gen) intIn(r [2]int) int32 {
	if r[1] == r[0] {
		return int32(r[0])
	}
	return int32(r[0] + g.rng.Intn(r[1]-r[0]+1))
}

func (g *gen) build() (*ir.Program, error) {
	s := g.spec

	// One global register per potentially correlated pair.
	numGlobals := s.Funcs
	g.b = ir.NewBuilder(s.Name, numGlobals)
	g.b.SetDataCPI(s.DataCPI)

	// main must be function 0 (the program entry).
	mainFB := g.b.Func("main")

	// Decide couplings in logical (call) order.
	g.correlated = make([]bool, s.Funcs)
	g.globalOf = make([]int32, s.Funcs)
	for i := 0; i+1 < s.Funcs; i += 2 {
		if g.rng.Float64() < s.CorrelatedFrac {
			g.correlated[i] = true
			g.globalOf[i] = int32(i)
		}
	}

	// Declare work functions in shuffled source order.
	order := g.rng.Perm(s.Funcs)
	g.workFB = make([]*ir.FuncBuilder, s.Funcs)
	for _, logical := range order {
		g.workFB[logical] = g.b.Func(fmt.Sprintf("f%03d", logical))
	}
	// Helpers are declared last: far from every caller in source order.
	for h := 0; h < s.Helpers; h++ {
		g.helpers = append(g.helpers, g.b.Func(fmt.Sprintf("helper%02d", h)))
	}

	// Bodies.
	for i := 0; i < s.Funcs; i++ {
		switch {
		case g.correlated[i]:
			g.buildSetter(g.workFB[i], g.globalOf[i])
		case i > 0 && g.correlated[i-1]:
			g.buildReader(g.workFB[i], g.globalOf[i-1])
		default:
			g.buildPlain(g.workFB[i])
		}
	}
	for _, h := range g.helpers {
		g.buildHelper(h)
	}

	g.buildMain(mainFB)
	return g.b.Build()
}

// buildChain emits a hot chain with attached cold blocks and returns the
// entry of the chain. endRet decides whether the chain returns or jumps
// to join.
func (g *gen) buildChain(f *ir.FuncBuilder, tag string, length int, join *ir.BlockBuilder) *ir.BlockBuilder {
	s := g.spec
	hots := make([]*ir.BlockBuilder, length)
	colds := make([]*ir.BlockBuilder, length)
	// Declare in source order: hot0, cold0, hot1, cold1, ... — the
	// interleaving that wastes cache lines in the original layout.
	for i := 0; i < length; i++ {
		hots[i] = f.Block(fmt.Sprintf("%s_h%d", tag, i), g.intIn(s.HotBytes))
		colds[i] = f.Block(fmt.Sprintf("%s_c%d", tag, i), g.intIn(s.ColdBytes))
	}
	for i := 0; i < length; i++ {
		var next *ir.BlockBuilder
		if i+1 < length {
			next = hots[i+1]
		} else {
			next = join
		}
		// Taken path (common): skip the cold block; fall-through (rare):
		// the adjacent cold block — the source encoding of
		// `if (unlikely) { ... }`.
		if g.rng.Float64() < s.HelperProb && len(g.helpers) > 0 {
			// A helper call replaces this block's cold branch.
			helper := g.helpers[g.rng.Intn(len(g.helpers))]
			hots[i].Call(helper, next)
			colds[i].Jump(next)
		} else {
			hots[i].Branch(ir.Prob{P: 1 - s.ColdProb}, next, colds[i])
			colds[i].Jump(next)
		}
	}
	return hots[0]
}

// buildPlain builds an uncoupled work function:
// entry -> [hot chain] x InnerTrips -> return.
// The entry stub is declared first so it is the function's entry block.
func (g *gen) buildPlain(f *ir.FuncBuilder) {
	entry := f.Block("entry", 4)
	ret := f.Block("ret", 4)
	latch := f.Block("latch", 8)
	chain := g.buildChain(f, "p", int(g.intIn(g.spec.HotChain)), latch)
	entry.Jump(chain)
	latch.Loop(g.intIn(g.spec.InnerTrips), chain, ret)
	ret.Return()
}

// buildSetter builds the A side of a Figure 3 pair: it randomly picks a
// mode, stores it in the pair's global, and executes the matching
// variant chain.
func (g *gen) buildSetter(f *ir.FuncBuilder, global int32) {
	entry := f.Block("sel", 8)
	entry.Choose(global, 1, 2)
	g.buildVariants(f, entry, global)
}

// buildVariants emits the two looped variant chains selected by the
// pair's global register, shared by setters and readers.
func (g *gen) buildVariants(f *ir.FuncBuilder, entry *ir.BlockBuilder, global int32) {
	length := int(g.intIn(g.spec.HotChain))
	half := (length + 1) / 2
	trips := g.intIn(g.spec.InnerTrips)
	ret := f.Block("ret", 4)
	ret.Return()
	latch1 := f.Block("v1_latch", 8)
	v1 := g.buildChain(f, "v1", half, latch1)
	latch1.Loop(trips, v1, ret)
	latch2 := f.Block("v2_latch", 8)
	v2 := g.buildChain(f, "v2", half, latch2)
	latch2.Loop(trips, v2, ret)
	entry.Branch(ir.GlobalEq{Reg: global, Val: 2}, v2, v1)
}

// buildReader builds the B side: it branches on the global the previous
// function set, so its executed variant always co-occurs with the
// setter's.
func (g *gen) buildReader(f *ir.FuncBuilder, global int32) {
	entry := f.Block("sel", 8)
	g.buildVariants(f, entry, global)
}

// buildHelper builds a small leaf function.
func (g *gen) buildHelper(f *ir.FuncBuilder) {
	entry := f.Block("entry", 4)
	ret := f.Block("ret", 4)
	chain := g.buildChainNoHelpers(f, "h", 2+g.rng.Intn(3), ret)
	entry.Jump(chain)
	ret.Return()
}

// buildChainNoHelpers is buildChain without helper calls (helpers must
// not recurse).
func (g *gen) buildChainNoHelpers(f *ir.FuncBuilder, tag string, length int, join *ir.BlockBuilder) *ir.BlockBuilder {
	s := g.spec
	hots := make([]*ir.BlockBuilder, length)
	colds := make([]*ir.BlockBuilder, length)
	for i := 0; i < length; i++ {
		hots[i] = f.Block(fmt.Sprintf("%s_h%d", tag, i), g.intIn(s.HotBytes))
		colds[i] = f.Block(fmt.Sprintf("%s_c%d", tag, i), g.intIn(s.ColdBytes))
	}
	for i := 0; i < length; i++ {
		var next *ir.BlockBuilder
		if i+1 < length {
			next = hots[i+1]
		} else {
			next = join
		}
		hots[i].Branch(ir.Prob{P: 1 - s.ColdProb}, next, colds[i])
		colds[i].Jump(next)
	}
	return hots[0]
}

// buildMain builds the phase-structured driver.
func (g *gen) buildMain(f *ir.FuncBuilder) {
	s := g.spec
	entry := f.Block("entry", 8)
	exit := f.Block("exit", 4)
	exit.Exit()

	// Phase working sets: overlapping windows over the logical function
	// order.
	step := 0
	if s.Phases > 1 {
		step = (s.Funcs - s.FuncsPerPhase) / (s.Phases - 1)
	}

	type phasePlan struct {
		seq []int // logical function ids, length CallsPerLoop
	}
	plans := make([]phasePlan, s.Phases)
	for p := 0; p < s.Phases; p++ {
		start := p * step
		if start+s.FuncsPerPhase > s.Funcs {
			start = s.Funcs - s.FuncsPerPhase
		}
		var seq []int
		for len(seq) < s.CallsPerLoop {
			for k := 0; k < s.FuncsPerPhase && len(seq) < s.CallsPerLoop; k++ {
				seq = append(seq, start+k)
			}
		}
		plans[p] = phasePlan{seq: seq}
	}

	// Emit per-phase drivers. Each phase: head -> call blocks -> latch.
	heads := make([]*ir.BlockBuilder, s.Phases)
	latches := make([]*ir.BlockBuilder, s.Phases)
	callFirst := make([]*ir.BlockBuilder, s.Phases)
	for p := 0; p < s.Phases; p++ {
		heads[p] = f.Block(fmt.Sprintf("ph%d", p), 8)
		calls := make([]*ir.BlockBuilder, len(plans[p].seq))
		for k := range plans[p].seq {
			calls[k] = f.Block(fmt.Sprintf("ph%d_call%d", p, k), 8)
		}
		latches[p] = f.Block(fmt.Sprintf("ph%d_latch", p), 8)
		callFirst[p] = calls[0]
		for k, logical := range plans[p].seq {
			next := latches[p]
			if k+1 < len(calls) {
				next = calls[k+1]
			}
			calls[k].Call(g.workFB[logical], next)
		}
	}
	// Wire phases together.
	entry.Jump(heads[0])
	for p := 0; p < s.Phases; p++ {
		heads[p].Jump(callFirst[p])
		if p+1 < s.Phases {
			latches[p].Loop(int32(s.PhaseLoops), callFirst[p], heads[p+1])
		} else {
			latches[p].Loop(int32(s.PhaseLoops), callFirst[p], exit)
		}
	}
}
