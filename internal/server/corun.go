package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/core"
	"codelayout/internal/footprint"
	"codelayout/internal/layout"
	"codelayout/internal/obs"
	"codelayout/internal/stats"
	"codelayout/internal/trace"
)

// maxJSONBody caps the /v1/corun and /v1/schedule request bodies; these
// carry digests and parameters, never trace payloads.
const maxJSONBody = 1 << 20

// pairStoreKey prefixes co-run pair documents in the durable store
// (trace blobs use "t-", schedule documents "s-"); result digests are
// bare hex, so prefixed keys cannot collide with them.
const pairStoreKey = "p-"

// corunRequest is the decoded body of POST /v1/corun: two cached layout
// digests plus an optional cache geometry (default: the paper's 32 KB
// 4-way L1I). Self-pairing (a == b) is allowed — two instances of the
// same layout sharing a cache is a meaningful co-run.
type corunRequest struct {
	A     string           `json:"a"`
	B     string           `json:"b"`
	Cache *cachesim.Config `json:"cache,omitempty"`
}

// PairSide is one program's view of a co-run pairing in a CorunDoc. The
// measured numbers come from replaying both traces through one shared
// simulated cache (cachesim.SimulateCorun); the predicted ones from the
// paper's Eq-1 footprint composition, which the scheduler minimizes.
type PairSide struct {
	// Digest names the cached optimization result this side replays.
	Digest    string `json:"digest"`
	Prog      string `json:"prog"`
	Optimizer string `json:"optimizer"`
	// MissSolo is the optimized layout's solo miss ratio; MissCorun its
	// miss ratio co-running with the peer's optimized layout; Contention
	// the difference — what sharing the cache costs this program.
	MissSolo   float64 `json:"missSolo"`
	MissCorun  float64 `json:"missCorun"`
	Contention float64 `json:"contention"`
	// Defensiveness is the relative reduction of this side's co-run miss
	// ratio from optimizing it (baseline peer held fixed); Politeness is
	// the relative reduction it causes in the peer's miss ratio — the
	// paper's benefit classes 2 and 3.
	Defensiveness float64 `json:"defensiveness"`
	Politeness    float64 `json:"politeness"`
	// PredMissRatio is the Eq-1 predicted co-run miss ratio of this
	// side's optimized layout against the peer's; PredMisses scales it
	// by the side's line-fetch count to a predicted miss count.
	PredMissRatio float64 `json:"predMissRatio"`
	PredMisses    float64 `json:"predMisses"`
}

// CorunDoc is the completed output of one co-run analysis — what the
// pair cache stores under its digest and what the interference matrix is
// assembled from. Sides are in canonical (sorted-digest) order, so the
// documents for (a, b) and (b, a) are one blob.
type CorunDoc struct {
	// Digest is the content address: SHA-256 over the sorted result
	// digests and the cache geometry.
	Digest string          `json:"digest"`
	Cache  cachesim.Config `json:"cache"`
	A      PairSide        `json:"a"`
	B      PairSide        `json:"b"`
	// PairCost is the total Eq-1 predicted co-run misses of the pairing
	// (A.PredMisses + B.PredMisses) — the symmetric weight the placement
	// solver minimizes.
	PairCost float64 `json:"pairCost"`
	// PeerLaps reports how many times each side's wrapping peer restarted
	// during the deployed-pairing simulation (A's run, then B's).
	PeerLaps [2]int `json:"peerLaps"`
	// ElapsedMS is the analysis wall time (0 for cache hits).
	ElapsedMS float64 `json:"elapsedMS"`
}

// corunJobRequest carries a validated /v1/corun job to its pool worker.
type corunJobRequest struct {
	a, b     *corunEntry
	cfg      cachesim.Config
	deadline time.Time
	// ctx is the job's lifetime context; DELETE /v1/jobs/{id} cancels it
	// even after the job started — co-run and schedule jobs are
	// cancelable mid-run, unlike optimizations.
	ctx context.Context
}

// corunEntry is one digest's materialized inputs: the cached result, the
// baseline and rebuilt optimized layouts, and the retained trace.
// Derived artifacts (line traces, footprint curves, solo miss ratios)
// are memoized per entry because a schedule job reuses them across every
// pair the entry appears in; the mutex serializes that lazy work.
type corunEntry struct {
	res  *Result
	base *layout.Layout
	opt  *layout.Layout
	tr   *trace.Trace

	mu     sync.Mutex
	lines  map[int][]int32             // optimized-layout line trace by lineBytes
	curves map[int]*footprint.Curve    // footprint curve by lineBytes
	solo   map[cachesim.Config]float64 // optimized solo miss ratio by geometry
}

// lineTrace returns the entry's optimized layout replayed to a cache-line
// reference trace — the input of the footprint model. Lines fit in int32
// because layouts address at most a few megabytes of code.
func (e *corunEntry) lineTrace(lineBytes int) []int32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if lines, ok := e.lines[lineBytes]; ok {
		return lines
	}
	r := layout.NewReplayer(e.opt, e.tr, lineBytes, false)
	var lines []int32
	buf := make([]int64, 0, 4096)
	for {
		out, blocks := r.AppendLines(buf[:0], 1024)
		if blocks == 0 {
			break
		}
		for _, ln := range out {
			lines = append(lines, int32(ln))
		}
		buf = out[:0]
	}
	if e.lines == nil {
		e.lines = make(map[int][]int32)
	}
	e.lines[lineBytes] = lines
	return lines
}

// curve returns the entry's footprint curve over its line trace,
// memoized per line size.
func (e *corunEntry) curve(ctx context.Context, lineBytes, workers int) *footprint.Curve {
	lines := e.lineTrace(lineBytes)
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.curves[lineBytes]; ok {
		return c
	}
	c := footprint.NewCurveCtx(ctx, lines, nil, workers)
	if e.curves == nil {
		e.curves = make(map[int]*footprint.Curve)
	}
	e.curves[lineBytes] = c
	return c
}

// soloMiss returns the optimized layout's solo miss ratio under cfg,
// memoized per geometry.
func (e *corunEntry) soloMiss(ctx context.Context, cfg cachesim.Config) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.solo[cfg]; ok {
		return m
	}
	m := cachesim.SimulateSoloCtx(ctx, cfg,
		layout.NewReplayer(e.opt, e.tr, cfg.LineBytes, false)).Stats.MissRatio()
	if e.solo == nil {
		e.solo = make(map[cachesim.Config]float64)
	}
	e.solo[cfg] = m
	return m
}

// corunDigest derives the content address of a pair analysis: the two
// result digests in sorted order (the pairing is symmetric) plus the
// cache geometry, newline-framed like resultDigest.
func corunDigest(dA, dB string, cfg cachesim.Config) string {
	if dB < dA {
		dA, dB = dB, dA
	}
	h := sha256.New()
	fmt.Fprintf(h, "layoutd/corun/v1\na:%s\nb:%s\ncache:%d/%d/%d\n",
		dA, dB, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes)
	return hex.EncodeToString(h.Sum(nil))
}

// docCache is a two-tier content-addressed cache for JSON analysis
// documents (pair and schedule results), following resultCache's shape:
// synchronous memory tier, write-behind durable tier, disk fallback on
// memory miss.
type docCache[T any] struct {
	mu     sync.RWMutex
	docs   map[string]*T
	disk   blobStore // nil: memory-only
	prefix string
}

func newDocCache[T any](disk blobStore, prefix string) *docCache[T] {
	return &docCache[T]{docs: make(map[string]*T), disk: disk, prefix: prefix}
}

func (c *docCache[T]) get(ctx context.Context, key string) (*T, bool) {
	c.mu.RLock()
	d, ok := c.docs[key]
	c.mu.RUnlock()
	if ok || c.disk == nil {
		return d, ok
	}
	sp := obs.StartSpan(ctx, "store.read")
	data, ok := c.disk.Get(c.prefix + key)
	sp.SetAttr("bytes", int64(len(data)))
	sp.End()
	if !ok {
		return nil, false
	}
	var doc T
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.docs[key] = &doc
	c.mu.Unlock()
	return &doc, true
}

func (c *docCache[T]) put(ctx context.Context, key string, doc *T) {
	c.mu.Lock()
	c.docs[key] = doc
	c.mu.Unlock()
	if c.disk == nil {
		return
	}
	sp := obs.StartSpan(ctx, "store.write")
	if data, err := json.Marshal(doc); err == nil {
		sp.SetAttr("bytes", int64(len(data)))
		c.disk.Put(c.prefix+key, data)
	}
	sp.End()
}

// drop purges the memory tier's copy of a key (the admin DELETE path;
// the disk blob is removed separately).
func (c *docCache[T]) drop(key string) {
	c.mu.Lock()
	delete(c.docs, key)
	c.mu.Unlock()
}

// resolveEntry materializes one cached digest for co-run analysis:
// result lookup, trace retrieval, program regeneration, and layout
// rebuild from the recorded sequence. The int is the HTTP status a
// failure maps to.
func (s *Server) resolveEntry(ctx context.Context, digest string) (*corunEntry, int, error) {
	res, ok := s.cache.get(ctx, digest)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("no cached layout %q", digest)
	}
	tr, ok := s.traces.get(ctx, res.TraceDigest)
	if !ok {
		return nil, http.StatusNotFound,
			fmt.Errorf("trace %s behind layout %s is no longer retained; resubmit the profile to POST /v1/jobs",
				res.TraceDigest, digest)
	}
	prog, err := s.program(res.Prog)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	opt, err := core.LayoutFromSequence(prog, res.Optimizer, res.Report.Sequence)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return &corunEntry{res: res, base: layout.Original(prog), opt: opt, tr: tr}, 0, nil
}

// readJSON decodes a small strict-schema JSON request body.
func readJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxJSONBody)
	defer body.Close()
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// corunConfig resolves the optional cache geometry of a request.
func corunConfig(c *cachesim.Config) (cachesim.Config, error) {
	if c == nil {
		return cachesim.L1IDefault, nil
	}
	if err := c.Validate(); err != nil {
		return cachesim.Config{}, err
	}
	return *c, nil
}

// handleCorun is POST /v1/corun: analyze a pair of cached layouts
// sharing a cache. Pair documents are content-addressed, so a repeated
// pairing (in either order) completes instantly from the cache;
// otherwise the analysis runs as an async job with the same
// backpressure, deadline, and cancellation rules as optimizations.
func (s *Server) handleCorun(w http.ResponseWriter, r *http.Request) {
	traceID := requestTraceID(r)
	logger := s.logger.With("trace_id", traceID)
	rec := obs.NewRecorder(s.cfg.SpanBufferSize)
	rec.SetDropHook(s.metrics.spansDropped.Inc)
	ctx := obs.WithTraceID(obs.WithLogger(obs.WithRecorder(r.Context(), rec), logger), traceID)

	var req corunRequest
	if err := readJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.A == "" || req.B == "" {
		httpError(w, http.StatusBadRequest, errors.New(`missing required field: "a" and "b" layout digests`))
		return
	}
	cfg, err := corunConfig(req.Cache)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	pair, status, err := s.resolveEntries(ctx, []string{req.A, req.B})
	if err != nil {
		httpError(w, status, err)
		return
	}
	a, b := pair[0], pair[1]
	s.metrics.corunJobs.Inc()

	jr := &corunJobRequest{a: a, b: b, cfg: cfg, deadline: time.Now().Add(s.cfg.JobTimeout)}
	key := corunDigest(a.res.Digest, b.res.Digest, cfg)
	jobCtx, jobCancel := context.WithCancel(context.Background())
	jr.ctx = jobCtx

	j := &Job{
		id:       s.newJobID(),
		kind:     jobKindCorun,
		status:   StatusQueued,
		digest:   key,
		created:  time.Now(),
		cancel:   jobCancel,
		traceID:  traceID,
		rec:      rec,
		progName: a.res.Prog + "+" + b.res.Prog,
		optName:  a.res.Optimizer + "+" + b.res.Optimizer,
	}
	j.logger = logger.With("job", j.id)

	if doc, ok := s.pairs.get(ctx, key); ok {
		s.metrics.pairHits.Inc()
		j.cached = true
		j.completeCorun(doc)
		s.storeJob(j)
		s.metrics.accepted.Inc()
		s.finish(j)
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	s.metrics.pairMisses.Inc()

	s.storeJob(j)
	accepted := s.pool.TrySubmit(func(poolCtx context.Context) {
		s.runCorunJob(poolCtx, j, jr)
	})
	if !accepted {
		s.dropJob(j.id)
		jobCancel()
		s.metrics.rejected.Inc()
		logger.Warn("corun job rejected: queue full", "job", j.id)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, errors.New("job queue full"))
		return
	}
	s.metrics.accepted.Inc()
	j.logger.Info("corun job accepted",
		"a", req.A, "b", req.B, "pair", key, "cache", cfg)
	writeJSON(w, http.StatusAccepted, j.view())
}

// runCorunJob is the pool task behind POST /v1/corun.
func (s *Server) runCorunJob(poolCtx context.Context, j *Job, req *corunJobRequest) {
	ctx, cleanup, ok := s.beginJob(poolCtx, j, req.deadline, req.ctx)
	if !ok {
		return
	}
	defer cleanup()
	start := time.Now()
	doc, err := s.pairAnalysis(ctx, req.cfg, req.a, req.b, s.cfg.OptWorkers)
	if err != nil {
		s.failOrCancel(j, err)
		return
	}
	doc.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.pairs.put(ctx, doc.Digest, doc)
	j.completeCorun(doc)
	s.metrics.completed.Inc()
	s.finish(j)
}

// computePair runs the six co-run simulations behind a pair document —
// baseline×baseline and optimized×baseline from each side's view
// (defensiveness and politeness), plus the deployed optimized×optimized
// pairing from both views (contention) — then adds the Eq-1 footprint
// predictions the scheduler consumes. Sides are canonicalized to sorted
// digest order so the document is identical for (a, b) and (b, a).
func (s *Server) computePair(ctx context.Context, cfg cachesim.Config, a, b *corunEntry, workers int) (*CorunDoc, error) {
	if b.res.Digest < a.res.Digest {
		a, b = b, a
	}
	sp := obs.StartSpan(ctx, "corun.replay")
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rep := func(l *layout.Layout, t *trace.Trace, wrap bool) *layout.Replayer {
		return layout.NewReplayer(l, t, cfg.LineBytes, wrap)
	}
	jobs := []cachesim.CorunJob{
		{Primary: rep(a.base, a.tr, false), Peer: rep(b.base, b.tr, true)}, // 0: baseline pairing, A's view
		{Primary: rep(a.opt, a.tr, false), Peer: rep(b.base, b.tr, true)},  // 1: A optimized, peer baseline
		{Primary: rep(b.base, b.tr, false), Peer: rep(a.base, a.tr, true)}, // 2: baseline pairing, B's view
		{Primary: rep(b.opt, b.tr, false), Peer: rep(a.base, a.tr, true)},  // 3: B optimized, peer baseline
		{Primary: rep(a.opt, a.tr, false), Peer: rep(b.opt, b.tr, true)},   // 4: deployed pairing, A's view
		{Primary: rep(b.opt, b.tr, false), Peer: rep(a.opt, a.tr, true)},   // 5: deployed pairing, B's view
	}
	res := cachesim.SimulateCorunBatch(cfg, jobs, workers)
	sp.SetAttr("sims", int64(len(jobs)))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	curveA := a.curve(ctx, cfg.LineBytes, workers)
	curveB := b.curve(ctx, cfg.LineBytes, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	capacity := float64(cfg.SizeBytes / cfg.LineBytes)
	predA := footprint.CorunMissRatio(curveA, curveB, capacity)
	predB := footprint.CorunMissRatio(curveB, curveA, capacity)
	side := func(e *corunEntry, baseRun, optRun, deployed cachesim.CorunResult, pred float64, curve *footprint.Curve) PairSide {
		solo := e.soloMiss(ctx, cfg)
		corun := deployed.PerThread[0].MissRatio()
		return PairSide{
			Digest:        e.res.Digest,
			Prog:          e.res.Prog,
			Optimizer:     e.res.Optimizer,
			MissSolo:      solo,
			MissCorun:     corun,
			Contention:    corun - solo,
			Defensiveness: stats.Reduction(baseRun.PerThread[0].MissRatio(), optRun.PerThread[0].MissRatio()),
			Politeness:    stats.Reduction(baseRun.PerThread[1].MissRatio(), optRun.PerThread[1].MissRatio()),
			PredMissRatio: pred,
			PredMisses:    pred * float64(curve.N),
		}
	}
	sideA := side(a, res[0], res[1], res[4], predA, curveA)
	sideB := side(b, res[2], res[3], res[5], predB, curveB)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &CorunDoc{
		Digest:   corunDigest(a.res.Digest, b.res.Digest, cfg),
		Cache:    cfg,
		A:        sideA,
		B:        sideB,
		PairCost: sideA.PredMisses + sideB.PredMisses,
		PeerLaps: [2]int{res[4].PeerLaps, res[5].PeerLaps},
	}, nil
}

// handleCorunDoc is GET /v1/corun/{digest}: a pair document by content
// address, mirroring GET /v1/layouts/{digest} for optimization results.
func (s *Server) handleCorunDoc(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if err := checkDigests(digest); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	doc, ok := s.pairs.get(r.Context(), digest)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached co-run analysis %q", digest))
		return
	}
	writeJSON(w, http.StatusOK, doc)
}
