// Interproc walks through the paper's Figure 3: two functions X and Y
// whose executed halves are correlated through a global variable. Only
// inter-procedural basic-block reordering can put X's and Y's matching
// halves next to each other; function reordering cannot.
package main

import (
	"fmt"
	"log"
	"strings"

	"codelayout"
)

func main() {
	log.SetFlags(0)

	// Build the Figure 3 program by hand through the public builder:
	//
	//	main: for 1..100 { call X; call Y }
	//	X: g = 1 or 2 (random); run X2 (g=1) or X3 (g=2)
	//	Y: if g == 1 run Y2 else Y3
	b := codelayout.NewProgramBuilder("fig3", 1)
	main_ := b.Func("main")
	x := b.Func("X")
	y := b.Func("Y")

	entry := main_.Block("entry", 8)
	callX := main_.Block("callX", 8)
	callY := main_.Block("callY", 8)
	latch := main_.Block("latch", 8)
	exit := main_.Block("exit", 8)
	entry.Jump(callX)
	callX.Call(x, callY)
	callY.Call(y, latch)
	latch.Loop(100, callX, exit)
	exit.Exit()

	x1 := x.Block("X1", 100)
	x2 := x.Block("X2", 100)
	x3 := x.Block("X3", 100)
	x1.Choose(0, 1, 2)
	x1.Branch(codelayout.CondGlobalEq(0, 2), x3, x2)
	x2.Return()
	x3.Return()

	y1 := y.Block("Y1", 100)
	y2 := y.Block("Y2", 100)
	y3 := y.Block("Y3", 100)
	y1.Branch(codelayout.CondGlobalEq(0, 2), y3, y2)
	y2.Return()
	y3.Return()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Dump())

	// Profile and reorder basic blocks across functions.
	prof, err := codelayout.ProfileProgram(prog, codelayout.TrainSeed)
	if err != nil {
		log.Fatal(err)
	}
	opt, _, err := codelayout.BBAffinity().Optimize(prof)
	if err != nil {
		log.Fatal(err)
	}

	var names []string
	for _, id := range opt.Order() {
		blk := prog.Blocks[id]
		names = append(names, prog.Funcs[blk.Fn].Name+"."+blk.Name)
	}
	fmt.Println("optimized inter-procedural block order:")
	fmt.Println("  " + strings.Join(names, " "))
	fmt.Println()
	fmt.Println("note how X2 sits next to Y2 and X3 next to Y3 — blocks from")
	fmt.Println("different functions interleaved, exactly the layout of Figure 3(b).")

	orig := codelayout.OriginalLayout(prog)
	fmt.Printf("\naddress of X2/Y2: original %d/%d, optimized %d/%d\n",
		orig.Addr[x2.ID()], orig.Addr[y2.ID()], opt.Addr[x2.ID()], opt.Addr[y2.ID()])
}
