package obs

import (
	"testing"
	"time"
)

func TestRuntimeSamplerSample(t *testing.T) {
	s := NewRuntimeSampler(time.Hour, 4)
	s.Sample()
	sm := s.Last()
	if sm.UnixMS == 0 {
		t.Fatal("sample has no timestamp")
	}
	if sm.HeapBytes <= 0 {
		t.Fatalf("heap bytes = %d, want > 0", sm.HeapBytes)
	}
	if sm.Goroutines <= 0 {
		t.Fatalf("goroutines = %d, want > 0", sm.Goroutines)
	}
	if sm.GCPauseP99NS < 0 || sm.SchedLatencyP99NS < 0 {
		t.Fatalf("negative percentile: %+v", sm)
	}
}

func TestRuntimeSamplerRingBound(t *testing.T) {
	s := NewRuntimeSampler(time.Hour, 3)
	for i := 0; i < 10; i++ {
		s.Sample()
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring holds %d samples, want 3", len(snap))
	}
	// Newest first: timestamps must be non-increasing.
	for i := 1; i < len(snap); i++ {
		if snap[i].UnixMS > snap[i-1].UnixMS {
			t.Fatalf("snapshot not newest-first: %v", snap)
		}
	}
}

func TestRuntimeSamplerStartStop(t *testing.T) {
	s := NewRuntimeSampler(time.Millisecond, 8)
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Snapshot()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if len(s.Snapshot()) < 2 {
		t.Fatal("ticker never sampled")
	}
}

// BenchmarkRuntimeSamplerTick gates the steady-state cost of one tick:
// the sample buffer is reused, so the per-tick allocations are bounded
// by the ring-entry bookkeeping, not the metric read.
func BenchmarkRuntimeSamplerTick(b *testing.B) {
	s := NewRuntimeSampler(time.Hour, 8)
	s.Sample() // warm the histogram buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}
