package layout

import (
	"testing"

	"codelayout/internal/ir"
)

func TestReorderBlocksIntraKeepsFunctionRegions(t *testing.T) {
	p := fig3Prog(t)
	// A global order that would interleave functions if allowed.
	x2 := p.BlockByName("X", "X2").ID
	y2 := p.BlockByName("Y", "Y2").ID
	x3 := p.BlockByName("X", "X3").ID
	y3 := p.BlockByName("Y", "Y3").ID
	l := ReorderBlocksIntra(p, []ir.BlockID{x2, y2, x3, y3})
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.HasStubs() {
		t.Error("intra-procedural reorder must not need stubs")
	}
	// Functions must occupy contiguous, source-ordered regions.
	var prevEnd int64
	for _, f := range p.Funcs {
		lo, hi := int64(1<<62), int64(-1)
		for _, b := range f.Blocks {
			if l.Addr[b] < lo {
				lo = l.Addr[b]
			}
			if end := l.Addr[b] + int64(l.Size[b]); end > hi {
				hi = end
			}
		}
		if lo < prevEnd {
			t.Errorf("function %s region [%d,%d) overlaps previous end %d", f.Name, lo, hi, prevEnd)
		}
		prevEnd = hi
	}
}

func TestReorderBlocksIntraEntryPinned(t *testing.T) {
	p := fig3Prog(t)
	x1 := p.BlockByName("X", "X1").ID
	x2 := p.BlockByName("X", "X2").ID
	// Even if the model ranks X2 first, X1 (the entry) stays first.
	l := ReorderBlocksIntra(p, []ir.BlockID{x2, x1})
	if l.Addr[x1] > l.Addr[x2] {
		t.Error("entry block displaced by intra-procedural reorder")
	}
}

func TestReorderBlocksIntraRanksWithinFunction(t *testing.T) {
	p := fig3Prog(t)
	x2 := p.BlockByName("X", "X2").ID
	x3 := p.BlockByName("X", "X3").ID
	// Rank X3 hotter than X2: X3 must precede X2 in X's region.
	l := ReorderBlocksIntra(p, []ir.BlockID{x3, x2})
	if l.Addr[x3] > l.Addr[x2] {
		t.Errorf("X3 (%d) not before X2 (%d)", l.Addr[x3], l.Addr[x2])
	}
	// Unranked blocks keep source order after ranked ones.
	l2 := ReorderBlocksIntra(p, []ir.BlockID{x3})
	if l2.Addr[x3] > l2.Addr[x2] {
		t.Error("ranked block not ahead of unranked")
	}
}

func TestReorderBlocksIntraIgnoresBadIDs(t *testing.T) {
	p := fig3Prog(t)
	l := ReorderBlocksIntra(p, []ir.BlockID{-1, 9999, 2, 2})
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
