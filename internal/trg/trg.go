// Package trg implements the temporal relationship graph model of §II-C:
// Gloy & Smith's TRG construction adapted by the paper, and the paper's
// own TRG reduction (Algorithm 2) that produces a new code order instead
// of inserting inter-function space.
//
// In the TRG (Definition 6), nodes are code blocks and an edge's weight
// counts potential cache conflicts: the times two successive occurrences
// of one endpoint are interleaved with at least one occurrence of the
// other, and vice versa. Construction only examines interleavings inside
// a bounded footprint window (the paper follows Gloy & Smith's advice of
// twice the cache size).
//
// The construction's hot path mirrors the affinity analysis (DESIGN.md
// §9): edge weights accumulate in an open-addressed flat table instead of
// a Go map, the per-access interleaving scan snapshots the LRU stack
// prefix into a reusable buffer instead of paying a callback per element,
// and an optional Arena recycles all per-shard state across builds.
package trg

import (
	"context"
	"sort"
	"sync"

	"codelayout/internal/flathash"
	"codelayout/internal/parallel"
	"codelayout/internal/stackdist"
	"codelayout/internal/trace"
)

// Graph is a weighted undirected temporal relationship graph.
type Graph struct {
	weights flathash.Sum64
	// nodes lists the distinct symbols in first-occurrence order; the
	// order makes every downstream step deterministic.
	nodes []int32
	// seen is the dense membership index over node IDs.
	seen []bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{}
}

// Reset clears the graph for reuse, keeping backing capacity.
func (g *Graph) Reset() {
	g.weights.Reset()
	g.nodes = g.nodes[:0]
	for i := range g.seen {
		g.seen[i] = false
	}
}

func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(int32(b))&0xffffffff
}

// ensureSym grows the dense membership index to cover symbol s.
func (g *Graph) ensureSym(s int32) {
	if int(s) >= len(g.seen) {
		grown := make([]bool, int(s)+1)
		copy(grown, g.seen)
		g.seen = grown
	}
}

// AddNode registers a node even if it never gains an edge, so that the
// reduction's output remains a permutation of all code blocks.
func (g *Graph) AddNode(s int32) {
	g.ensureSym(s)
	if !g.seen[s] {
		g.seen[s] = true
		g.nodes = append(g.nodes, s)
	}
}

// AddWeight adds delta to the weight of edge (a, b).
func (g *Graph) AddWeight(a, b int32, delta int64) {
	if a == b {
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	g.weights.Add(pairKey(a, b), delta)
}

// Weight returns the weight of edge (a, b), 0 if absent.
func (g *Graph) Weight(a, b int32) int64 {
	if a == b {
		return 0
	}
	return g.weights.Get(pairKey(a, b))
}

// Nodes returns the node list in first-occurrence order.
func (g *Graph) Nodes() []int32 { return g.nodes }

// NumEdges returns the number of edges with non-zero weight.
func (g *Graph) NumEdges() int {
	n := 0
	g.weights.ForEach(func(_ int64, w int64) {
		if w != 0 {
			n++
		}
	})
	return n
}

// forEachEdge visits every non-zero edge in unspecified order. Downstream
// consumers (Edges sorts; Reduce feeds a heap with a total order) do not
// depend on visit order.
func (g *Graph) forEachEdge(f func(a, b int32, w int64)) {
	g.weights.ForEach(func(key int64, w int64) {
		if w != 0 {
			f(int32(key>>32), int32(key&0xffffffff), w)
		}
	})
}

// Edge is one weighted edge, used by tests and diagnostics.
type Edge struct {
	A, B   int32
	Weight int64
}

// Edges returns all edges sorted by descending weight, then by node IDs.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.weights.Len())
	g.forEachEdge(func(a, b int32, w int64) {
		out = append(out, Edge{A: a, B: b, Weight: w})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Arena recycles the construction's working set — per-shard LRU stacks,
// snapshot buffers, epoch scratch and partial graphs — across Build
// calls, plus whole result graphs returned via PutGraph. The zero value
// is ready to use and safe for concurrent use.
type Arena struct {
	shards sync.Pool // *buildState
	graphs sync.Pool // *Graph
}

func (a *Arena) getShard() *buildState {
	if a == nil {
		return &buildState{}
	}
	if st, ok := a.shards.Get().(*buildState); ok {
		return st
	}
	return &buildState{}
}

func (a *Arena) putShard(st *buildState) {
	if a != nil {
		a.shards.Put(st)
	}
}

// GetGraph returns a cleared graph, recycled if one is pooled.
func (a *Arena) GetGraph() *Graph {
	if a == nil {
		return NewGraph()
	}
	if g, ok := a.graphs.Get().(*Graph); ok {
		g.Reset()
		return g
	}
	return NewGraph()
}

// PutGraph recycles a graph the caller no longer references.
func (a *Arena) PutGraph(g *Graph) {
	if a != nil && g != nil {
		a.graphs.Put(g)
	}
}

// buildState is the reusable working set of one shard's construction
// pass.
type buildState struct {
	stack stackdist.LRUStack
	// topk is the reusable interleaving-snapshot buffer.
	topk []int32
	// stamp/epoch is the warm-up's epoch-stamped distinct-symbol scratch.
	stamp []int32
	epoch int32
	// g accumulates the shard's partial graph when sharding.
	g *Graph
}

// warmStartScratch is warmStart on the epoch scratch, so pooled shards
// warm up without allocating.
func (st *buildState) warmStartScratch(syms []int32, maxSym int32, lo, need int) int {
	if n := int(maxSym) + 1; cap(st.stamp) < n {
		st.stamp = make([]int32, n)
		st.epoch = 0
	} else {
		st.stamp = st.stamp[:n]
	}
	st.epoch++
	if st.epoch <= 0 {
		full := st.stamp[:cap(st.stamp)]
		for i := range full {
			full[i] = 0
		}
		st.epoch = 1
	}
	count := 0
	p := lo
	for p > 0 && count < need {
		p--
		s := syms[p]
		if st.stamp[s] != st.epoch {
			st.stamp[s] = st.epoch
			count++
		}
	}
	return p
}

// Build constructs the TRG of a code trace. windowBlocks bounds the
// examined interleaving window in distinct code blocks (the footprint
// window "2C" of §II-C divided by the uniform block size); 0 means
// unbounded. At each access, if the block's previous occurrence lies
// within the window, every distinct block interleaved between the two
// occurrences receives one conflict count — the hash-table-plus-list
// stack makes the search O(1) per step as the paper describes.
//
// Build uses every available core; the graph is identical to the serial
// construction (see BuildWorkers).
func Build(t *trace.Trace, windowBlocks int) *Graph {
	return BuildWorkers(t, windowBlocks, 0)
}

// BuildWorkers is Build with bounded concurrency: 0 workers means every
// available core, 1 pins the serial reference path.
func BuildWorkers(t *trace.Trace, windowBlocks, workers int) *Graph {
	g, _ := BuildCtx(context.Background(), t, windowBlocks, workers, nil)
	return g
}

// BuildCtx is BuildWorkers with cancellation and buffer reuse. The trace
// is split into contiguous shards; each shard warms a private LRU stack
// by replaying the span holding the last windowBlocks distinct symbols
// before it, so its per-access interleaving views equal the full-trace
// simulation, and the per-shard partial graphs merge deterministically:
// edge weights sum (addition commutes) and shard node lists concatenate
// in trace order, reproducing the global first-occurrence node order.
// The shard loops poll ctx, so a job deadline can interrupt a long
// construction; on cancellation the partial graph is discarded and ctx's
// error returned. arena may be nil.
func BuildCtx(ctx context.Context, t *trace.Trace, windowBlocks, workers int, arena *Arena) (*Graph, error) {
	tt := t.Trimmed()
	g := arena.GetGraph()
	if len(tt.Syms) == 0 {
		return g, nil
	}
	maxSym := tt.MaxSym()
	g.ensureSym(maxSym)
	limit := windowBlocks
	if limit <= 0 {
		limit = int(maxSym) + 1
	}
	// A shard must dwarf its warm-up replay (up to `limit` distinct
	// symbols) for sharding to pay; Chunks collapses to one shard when
	// the trace is too short to split.
	chunks := parallel.Chunks(len(tt.Syms), parallel.Workers(workers), 4*limit)
	if len(chunks) == 1 {
		st := arena.getShard()
		err := buildShard(ctx, st, g, tt.Syms, maxSym, limit, 0, len(tt.Syms))
		arena.putShard(st)
		if err != nil {
			arena.PutGraph(g)
			return nil, err
		}
		return g, nil
	}
	states := make([]*buildState, len(chunks))
	err := parallel.ForEachCtx(ctx, workers, len(chunks), func(ctx context.Context, i int) error {
		st := arena.getShard()
		states[i] = st
		if st.g == nil {
			st.g = NewGraph()
		} else {
			st.g.Reset()
		}
		st.g.ensureSym(maxSym)
		return buildShard(ctx, st, st.g, tt.Syms, maxSym, limit, chunks[i][0], chunks[i][1])
	})
	if err != nil {
		for _, st := range states {
			if st != nil {
				arena.putShard(st)
			}
		}
		arena.PutGraph(g)
		return nil, err
	}
	for _, st := range states {
		for _, s := range st.g.nodes {
			g.AddNode(s)
		}
		st.g.weights.ForEach(func(key int64, w int64) {
			g.weights.Add(key, w)
		})
		arena.putShard(st)
	}
	return g, nil
}

// cancelCheckMask throttles the in-shard context checks: the shard loop
// polls ctx.Err() once per (cancelCheckMask+1) accesses.
const cancelCheckMask = 0x3FFF

// buildShard accumulates the conflict counts of accesses [lo, hi) into
// g, warming the LRU stack so the shard sees exactly the stack prefix
// the full simulation would.
func buildShard(ctx context.Context, st *buildState, g *Graph, syms []int32, maxSym int32, limit, lo, hi int) error {
	st.stack.Reset(maxSym)
	stack := &st.stack
	for i := st.warmStartScratch(syms, maxSym, lo, limit); i < lo; i++ {
		stack.Access(syms[i])
	}
	for i := lo; i < hi; i++ {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		cur := syms[i]
		g.AddNode(cur)
		// Snapshot the stack prefix above cur's previous occurrence: those
		// are exactly the blocks interleaved between the two occurrences.
		// If cur is not within the window, the previous occurrence is too
		// far away (or absent) and contributes nothing.
		between, found := stack.AppendTopKUntil(st.topk[:0], limit, cur)
		st.topk = between[:0]
		if found {
			for _, x := range between {
				g.AddNode(x)
				g.weights.Add(pairKey(cur, x), 1)
			}
		}
		stack.Access(cur)
	}
	return nil
}

// warmStart returns the largest p <= lo such that syms[p:lo] contains
// need distinct symbols (or 0 if the prefix holds fewer): replaying
// syms[p:lo] reproduces the full simulation's top-need stack prefix,
// which is all the interleaving scan ever examines. The kernel uses the
// allocation-free buildState.warmStartScratch; this map-based form is
// the test oracle for the shard-boundary cases.
func warmStart(syms []int32, lo, need int) int {
	seen := make(map[int32]struct{}, need)
	p := lo
	for p > 0 && len(seen) < need {
		p--
		seen[syms[p]] = struct{}{}
	}
	return p
}
