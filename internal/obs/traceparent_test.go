package obs

import (
	"strings"
	"testing"
)

const (
	tpTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	tpSpan  = "00f067aa0ba902b7"
)

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in      string
		ok      bool
		trace   string
		span    string
		sampled bool
	}{
		{"00-" + tpTrace + "-" + tpSpan + "-01", true, tpTrace, tpSpan, true},
		{"00-" + tpTrace + "-" + tpSpan + "-00", true, tpTrace, tpSpan, false},
		// Future version with trailing fields.
		{"cc-" + tpTrace + "-" + tpSpan + "-01-extra", true, tpTrace, tpSpan, true},
		// Legacy 16-hex trace ID from a pre-widening node.
		{"00-" + tpSpan + "-" + tpSpan + "-01", true, tpSpan, tpSpan, true},
		// Flags other than 01 parse; only bit 0 is sampled.
		{"00-" + tpTrace + "-" + tpSpan + "-03", true, tpTrace, tpSpan, true},
		{"00-" + tpTrace + "-" + tpSpan + "-02", true, tpTrace, tpSpan, false},

		{"", false, "", "", false},
		{"00-" + tpTrace + "-" + tpSpan, false, "", "", false},                          // no flags
		{"00-" + tpTrace + "-" + tpSpan + "-0", false, "", "", false},                   // short flags
		{"00-" + tpTrace + "-" + tpSpan + "-0g", false, "", "", false},                  // bad flags hex
		{"ff-" + tpTrace + "-" + tpSpan + "-01", false, "", "", false},                  // forbidden version
		{"0g-" + tpTrace + "-" + tpSpan + "-01", false, "", "", false},                  // bad version hex
		{"00-" + strings.Repeat("0", 32) + "-" + tpSpan + "-01", false, "", "", false},  // zero trace
		{"00-" + tpTrace + "-" + strings.Repeat("0", 16) + "-01", false, "", "", false}, // zero span
		{"00-" + strings.ToUpper(tpTrace) + "-" + tpSpan + "-01", false, "", "", false}, // uppercase
		{"00-" + tpTrace[:31] + "g-" + tpSpan + "-01", false, "", "", false},            // bad trace hex
		{"00-" + tpTrace + "-" + tpSpan[:15] + "g-01", false, "", "", false},            // bad span hex
		{"00-" + tpTrace + "-" + tpSpan + "-01-extra", false, "", "", false},            // v00 must be exact
		{"cc-" + tpTrace + "-" + tpSpan + "-01x", false, "", "", false},                 // junk, not a separator
		{"00_" + tpTrace + "_" + tpSpan + "_01", false, "", "", false},                  // wrong separators
		{"00-" + tpTrace[:20] + "-" + tpSpan + "-01", false, "", "", false},             // odd trace width
	}
	for _, c := range cases {
		tp, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if tp.TraceID != c.trace || tp.SpanID != c.span || tp.Sampled != c.sampled {
			t.Errorf("ParseTraceparent(%q) = %+v, want (%s, %s, %v)", c.in, tp, c.trace, c.span, c.sampled)
		}
	}
}

func TestFormatTraceparent(t *testing.T) {
	got := FormatTraceparent(tpTrace, tpSpan, true)
	want := "00-" + tpTrace + "-" + tpSpan + "-01"
	if got != want {
		t.Fatalf("FormatTraceparent = %q, want %q", got, want)
	}
	if got := FormatTraceparent(tpTrace, tpSpan, false); !strings.HasSuffix(got, "-00") {
		t.Fatalf("unsampled header = %q, want -00 suffix", got)
	}
	// A legacy 16-hex trace ID is left-padded to a spec-valid header.
	padded := FormatTraceparent(tpSpan, tpSpan, true)
	want = "00-" + strings.Repeat("0", 16) + tpSpan + "-" + tpSpan + "-01"
	if padded != want {
		t.Fatalf("legacy pad = %q, want %q", padded, want)
	}
	if _, ok := ParseTraceparent(padded); !ok {
		t.Fatal("padded legacy header does not round-trip through the parser")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 32; i++ {
		trace, span := NewTraceID(), NewSpanID()
		h := FormatTraceparent(trace, span, true)
		tp, ok := ParseTraceparent(h)
		if !ok || tp.TraceID != trace || tp.SpanID != span || !tp.Sampled {
			t.Fatalf("round trip %q -> %+v ok=%v", h, tp, ok)
		}
	}
}

func TestValidTraceID(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{tpTrace, true},
		{tpSpan, true}, // legacy width
		{"", false},
		{strings.Repeat("0", 32), false},
		{strings.Repeat("0", 16), false},
		{strings.ToUpper(tpTrace), false},
		{tpTrace[:20], false},
		{tpTrace + "ab", false},
		{strings.Repeat("g", 32), false},
	}
	for _, c := range cases {
		if got := ValidTraceID(c.in); got != c.ok {
			t.Errorf("ValidTraceID(%q) = %v, want %v", c.in, got, c.ok)
		}
	}
}

// The parse and format paths run on every inbound request and every
// outbound peer hop: they must not allocate.
func TestTraceparentZeroAlloc(t *testing.T) {
	h := "00-" + tpTrace + "-" + tpSpan + "-01"
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := ParseTraceparent(h); !ok {
			t.Fatal("parse failed")
		}
	}); n != 0 {
		t.Fatalf("ParseTraceparent allocates %v per op, want 0", n)
	}
	buf := make([]byte, 0, MaxTraceparentLen)
	if n := testing.AllocsPerRun(1000, func() {
		buf = AppendTraceparent(buf[:0], tpTrace, tpSpan, true)
	}); n != 0 {
		t.Fatalf("AppendTraceparent allocates %v per op, want 0", n)
	}
}

func BenchmarkTraceparentParse(b *testing.B) {
	h := "00-" + tpTrace + "-" + tpSpan + "-01"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := ParseTraceparent(h); !ok {
			b.Fatal("parse failed")
		}
	}
}

func BenchmarkTraceparentFormat(b *testing.B) {
	buf := make([]byte, 0, MaxTraceparentLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendTraceparent(buf[:0], tpTrace, tpSpan, true)
	}
}
