package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func TestBlockAndFuncMapping(t *testing.T) {
	p := buildTwoFuncProg(t)
	bm := BlockMapping(p)
	if bm.Len() != p.NumBlocks() {
		t.Fatalf("block mapping has %d entries, want %d", bm.Len(), p.NumBlocks())
	}
	if bm.Name(0) != "main.m0" {
		t.Errorf("Name(0) = %q", bm.Name(0))
	}
	if bm.Sizes[0] != 8 {
		t.Errorf("Sizes[0] = %d", bm.Sizes[0])
	}
	fm := FuncMapping(p)
	if fm.Len() != p.NumFuncs() {
		t.Fatalf("func mapping has %d entries", fm.Len())
	}
	if fm.Name(1) != "F" {
		t.Errorf("func Name(1) = %q", fm.Name(1))
	}
	if fm.Sizes[0] != 16 { // main has two 8-byte blocks
		t.Errorf("func Sizes[0] = %d, want 16", fm.Sizes[0])
	}
	// Out-of-range symbols get placeholders instead of panics.
	if bm.Name(-1) != "sym-1" || bm.Name(9999) != "sym9999" {
		t.Error("out-of-range names wrong")
	}
}

func TestMappingRoundTrip(t *testing.T) {
	p := buildTwoFuncProg(t)
	for _, m := range []*Mapping{BlockMapping(p), FuncMapping(p), {}} {
		var buf bytes.Buffer
		if _, err := m.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMappingFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() == 0 {
			if got.Len() != 0 {
				t.Error("empty mapping round trip grew")
			}
			continue
		}
		if !reflect.DeepEqual(got.Names, m.Names) || !reflect.DeepEqual(got.Sizes, m.Sizes) {
			t.Error("mapping round trip mismatch")
		}
	}
}

func TestMappingRejectsGarbage(t *testing.T) {
	if _, err := ReadMappingFrom(bytes.NewReader([]byte("XXXX\x01\x00"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadMappingFrom(bytes.NewReader([]byte("CLMP\x09\x00"))); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := ReadMappingFrom(bytes.NewReader([]byte("CLMP\x01\x05"))); err == nil {
		t.Error("truncated body accepted")
	}
}
