// Command tracedump records and inspects instrumentation traces, the
// artifact the paper's modeling step produces (§II-F). It can profile a
// suite program to trace + mapping files, and print a recorded trace's
// statistics: length, distinct symbols, the hottest code, the reuse
// distance distribution, and the footprint curve.
//
// Usage:
//
//	tracedump -prog 458.sjeng -record /tmp/sjeng      # writes .trace/.map
//	tracedump -dump /tmp/sjeng                        # prints statistics
//	tracedump -prog 458.sjeng -record /tmp/s -gran func
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"codelayout/internal/core"
	"codelayout/internal/footprint"
	"codelayout/internal/stackdist"
	"codelayout/internal/stats"
	"codelayout/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracedump: ")
	prog := flag.String("prog", "", "suite program to profile")
	record := flag.String("record", "", "path prefix to write <prefix>.trace and <prefix>.map")
	dump := flag.String("dump", "", "path prefix to read and summarize")
	gran := flag.String("gran", "bb", "granularity: bb or func")
	seed := flag.Int64("seed", core.TrainSeed, "input seed for profiling")
	top := flag.Int("top", 10, "number of hottest symbols to print")
	repeat := flag.Int("repeat", 1, "concatenate the recorded trace this many times (large-trace generation for streaming tests)")
	flag.Parse()

	switch {
	case *record != "" && *prog != "":
		if err := doRecord(*prog, *record, *gran, *seed, *repeat); err != nil {
			log.Fatal(err)
		}
	case *dump != "":
		if err := doDump(*dump, *top); err != nil {
			log.Fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(progName, prefix, gran string, seed int64, repeat int) error {
	p, err := core.LoadProgram(progName)
	if err != nil {
		return err
	}
	prof, err := core.ProfileProgram(p, seed)
	if err != nil {
		return err
	}
	var tr *trace.Trace
	var m *trace.Mapping
	switch gran {
	case "bb":
		tr = prof.Blocks.Trimmed()
		m = trace.BlockMapping(p)
	case "func":
		tr = trace.FuncTrace(p, prof.Blocks)
		m = trace.FuncMapping(p)
	default:
		return fmt.Errorf("unknown granularity %q", gran)
	}
	if repeat > 1 {
		// Tile the profiled trace: a cheap way to produce an
		// arbitrarily large, structurally realistic CLTR file (the
		// streaming smoke test uploads traces far larger than the
		// daemon's memory bound).
		syms := make([]int32, 0, len(tr.Syms)*repeat)
		for i := 0; i < repeat; i++ {
			syms = append(syms, tr.Syms...)
		}
		tr = trace.New(syms)
	}
	tf, err := os.Create(prefix + ".trace")
	if err != nil {
		return err
	}
	defer tf.Close()
	if _, err := tr.WriteTo(tf); err != nil {
		return err
	}
	mf, err := os.Create(prefix + ".map")
	if err != nil {
		return err
	}
	defer mf.Close()
	if _, err := m.WriteTo(mf); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %d occurrences of %d symbols -> %s.trace, %s.map\n",
		progName, tr.Len(), tr.NumDistinct(), prefix, prefix)
	return nil
}

func doDump(prefix string, top int) error {
	tf, err := os.Open(prefix + ".trace")
	if err != nil {
		return err
	}
	defer tf.Close()
	tr, err := trace.ReadFrom(tf)
	if err != nil {
		return err
	}
	var m *trace.Mapping
	if mf, err := os.Open(prefix + ".map"); err == nil {
		defer mf.Close()
		if m, err = trace.ReadMappingFrom(mf); err != nil {
			return err
		}
	} else {
		m = &trace.Mapping{}
	}

	fmt.Printf("trace: %d occurrences, %d distinct symbols\n", tr.Len(), tr.NumDistinct())

	// Hottest symbols.
	counts := tr.Counts()
	keep := tr.TopN(top)
	fmt.Printf("\nhottest %d symbols:\n", top)
	tbl := &stats.Table{Header: []string{"symbol", "name", "size(B)", "count", "share"}}
	type hot struct {
		sym int32
		cnt int64
	}
	var hots []hot
	for sym := range keep {
		hots = append(hots, hot{sym, counts[sym]})
	}
	for i := 0; i < len(hots); i++ {
		for j := i + 1; j < len(hots); j++ {
			if hots[j].cnt > hots[i].cnt ||
				(hots[j].cnt == hots[i].cnt && hots[j].sym < hots[i].sym) {
				hots[i], hots[j] = hots[j], hots[i]
			}
		}
	}
	for _, h := range hots {
		size := int32(0)
		if int(h.sym) < len(m.Sizes) {
			size = m.Sizes[h.sym]
		}
		tbl.Add(fmt.Sprintf("%d", h.sym), m.Name(h.sym),
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", h.cnt),
			stats.Pct(float64(h.cnt)/float64(tr.Len())))
	}
	fmt.Print(tbl.String())

	// Reuse distance distribution.
	dists := stackdist.Distances(tr.Syms)
	hist, cold := stackdist.Histogram(dists)
	fmt.Printf("\nreuse distances: %d cold accesses; miss-ratio-at-capacity:\n", cold)
	mr := stackdist.MissRatioCurve(hist, cold, int64(tr.Len()))
	for _, c := range []int{8, 32, 128, 512} {
		v := 0.0
		if c < len(mr) {
			v = mr[c]
		}
		fmt.Printf("  capacity %4d symbols: %s\n", c, stats.Pct(v))
	}

	// Footprint curve highlights.
	curve := footprint.NewCurve(tr.Syms, nil)
	fmt.Printf("\nfootprint: total %.0f symbols; FP(1k)=%.0f FP(10k)=%.0f FP(100k)=%.0f\n",
		curve.Total, curve.At(1000), curve.At(10000), curve.At(100000))
	return nil
}
