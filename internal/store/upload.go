package store

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Resumable upload sessions: the server-side half of layoutd's chunked
// trace ingest. A client creates a session, PATCHes byte ranges at the
// offset the server reports, and finalizes; if the connection drops
// mid-PATCH it asks for the current offset and continues from there.
//
// Durability model: spooled bytes live in .part files next to the blob
// store, fsynced after every accepted append, and each append is
// all-or-nothing — a failed or short body truncates back to the prior
// offset, so the reported offset always equals the durable prefix.
// Sessions themselves are in-process state: a daemon restart forgets
// them (clients get 404 and restart the upload) and the startup sweep
// deletes stray .part files, so crashes never leak spool space or leave
// a partial upload masquerading as complete.

// partSuffix marks upload spool files; the store's startup scan ignores
// them (they live in their own subdirectory) and NewUploads deletes any
// survivors from a previous process.
const partSuffix = ".part"

// Defaults for zero NewUploads limits.
const (
	// DefaultUploadMaxBytes bounds one upload's spooled size.
	DefaultUploadMaxBytes = 4 << 30
	// DefaultMaxUploadSessions bounds concurrently open sessions.
	DefaultMaxUploadSessions = 64
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrOffsetMismatch: the PATCH offset is not the session's current
	// offset (409; re-GET the offset and resume from there).
	ErrOffsetMismatch = errors.New("store: upload offset mismatch")
	// ErrUploadTooLarge: the append would exceed the per-upload bound
	// (413).
	ErrUploadTooLarge = errors.New("store: upload exceeds size limit")
	// ErrTooManySessions: the session table is full (429).
	ErrTooManySessions = errors.New("store: too many upload sessions")
	// ErrUploadSealed: the session was already finalized (409).
	ErrUploadSealed = errors.New("store: upload already finalized")
)

// Uploads manages the upload sessions of one daemon process.
type Uploads struct {
	dir         string
	maxBytes    int64
	maxSessions int

	mu sync.Mutex
	m  map[string]*Upload
}

// NewUploads prepares the spool directory and sweeps stray part files
// left by a previous process (their sessions died with it). maxBytes
// bounds one upload, maxSessions the open-session count; zeros mean the
// defaults.
func NewUploads(dir string, maxBytes int64, maxSessions int) (*Uploads, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultUploadMaxBytes
	}
	if maxSessions <= 0 {
		maxSessions = DefaultMaxUploadSessions
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating upload dir %s: %w", dir, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning upload dir %s: %w", dir, err)
	}
	for _, de := range ents {
		if !de.IsDir() && strings.HasSuffix(de.Name(), partSuffix) {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
	return &Uploads{
		dir:         dir,
		maxBytes:    maxBytes,
		maxSessions: maxSessions,
		m:           make(map[string]*Upload),
	}, nil
}

// Dir returns the spool directory (the server also parks streamed
// submission spools beside the upload sessions).
func (u *Uploads) Dir() string { return u.dir }

// Create opens a new session at offset 0.
func (u *Uploads) Create() (*Upload, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, fmt.Errorf("store: upload id: %w", err)
	}
	id := hex.EncodeToString(b[:])
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.m) >= u.maxSessions {
		return nil, ErrTooManySessions
	}
	f, err := os.Create(u.partPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: upload spool: %w", err)
	}
	up := &Upload{ID: id, maxBytes: u.maxBytes, f: f}
	u.m[id] = up
	return up, nil
}

// Get returns the open session with the given id.
func (u *Uploads) Get(id string) (*Upload, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	up, ok := u.m[id]
	return up, ok
}

// Len returns the number of open sessions (the sessions gauge).
func (u *Uploads) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.m)
}

// Seal finalizes the session: the spool file is synced, closed and
// handed to the caller, and the session slot frees up. The caller owns
// the returned path — typically it streams the bytes into a job and
// then removes the file.
func (u *Uploads) Seal(id string) (path string, size int64, err error) {
	u.mu.Lock()
	up, ok := u.m[id]
	if ok {
		delete(u.m, id)
	}
	u.mu.Unlock()
	if !ok {
		return "", 0, fmt.Errorf("store: unknown upload %s", id)
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	up.sealed = true
	size = up.offset
	if err := up.f.Close(); err != nil {
		_ = os.Remove(u.partPath(id))
		return "", 0, fmt.Errorf("store: sealing upload %s: %w", id, err)
	}
	return u.partPath(id), size, nil
}

// Discard drops the session and deletes its spool file, reporting
// whether the session existed.
func (u *Uploads) Discard(id string) bool {
	u.mu.Lock()
	up, ok := u.m[id]
	if ok {
		delete(u.m, id)
	}
	u.mu.Unlock()
	if !ok {
		return false
	}
	up.mu.Lock()
	up.sealed = true
	_ = up.f.Close()
	up.mu.Unlock()
	_ = os.Remove(u.partPath(id))
	return true
}

func (u *Uploads) partPath(id string) string {
	return filepath.Join(u.dir, id+partSuffix)
}

// Upload is one resumable session. Appends serialize on the session;
// a concurrent PATCH simply observes a stale offset and gets
// ErrOffsetMismatch.
type Upload struct {
	ID       string
	maxBytes int64

	mu      sync.Mutex
	f       *os.File
	offset  int64
	aborted bool // last append failed mid-body; the next success is a resume
	sealed  bool
}

// Offset returns the durable byte count — where the next Append must
// start.
func (up *Upload) Offset() int64 {
	up.mu.Lock()
	defer up.mu.Unlock()
	return up.offset
}

// Append writes r's bytes at the given offset. The append is
// all-or-nothing: on any failure (offset mismatch, client disconnect
// mid-body, size bound, disk error) the spool rolls back to the prior
// offset, which is returned alongside the error so the HTTP layer can
// report it. resumed is true when this append recovered a session whose
// previous append failed mid-body — the upload-resume counter's signal.
func (up *Upload) Append(offset int64, r io.Reader) (newOffset int64, resumed bool, err error) {
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.sealed {
		return up.offset, false, ErrUploadSealed
	}
	if offset != up.offset {
		return up.offset, false, ErrOffsetMismatch
	}
	allowed := up.maxBytes - up.offset
	n, err := io.Copy(up.f, io.LimitReader(r, allowed+1))
	if err == nil && n > allowed {
		err = ErrUploadTooLarge
	}
	if err == nil {
		err = up.f.Sync()
	}
	if err != nil {
		// Roll back to the durable prefix so the reported offset stays
		// truthful; the client resumes from it.
		_ = up.f.Truncate(up.offset)
		_, _ = up.f.Seek(up.offset, io.SeekStart)
		up.aborted = true
		return up.offset, false, err
	}
	up.offset += n
	resumed = up.aborted
	up.aborted = false
	return up.offset, resumed, nil
}
