// Package cluster is the peer-group layer for layoutd: N statically
// configured instances share the serving load by content address.
//
// Ownership of every digest is decided by rendezvous (highest-random-
// weight) hashing: each peer is scored against the key, and the ranked
// order is identical no matter which node computes it. The first ranked
// peer that is healthy is the effective owner; non-owners forward
// requests to it. When the peer set shrinks by one node, only the keys
// that node owned move — the defining property of rendezvous hashing,
// and the reason no ring state needs to be stored or gossiped.
//
// Because every blob is content-addressed, all cluster writes are
// last-write-wins safe: two nodes writing the same key are writing
// identical bytes, so replication and forwarding can retry blindly.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codelayout/internal/obs"
)

// Wire headers used between peers.
const (
	// ForwardHeader marks a request already forwarded once; a receiver
	// never forwards it again (loop prevention). The value is the
	// forwarding node's ID.
	ForwardHeader = "X-Layoutd-Forward"
	// ForwardedToHeader is set on responses that were served by proxying
	// to another node, naming that node, so cluster-aware clients can
	// re-base follow-up requests onto the owner.
	ForwardedToHeader = "X-Layoutd-Forwarded-To"
	// DigestHeader carries sha256(body) on replication pushes and raw
	// store reads; the receiver recomputes and rejects mismatches.
	DigestHeader = "X-Layoutd-Digest"
)

// injectTraceparent stamps req with a W3C traceparent header so every
// peer hop — replication pushes, anti-entropy censuses, blob fetches —
// is attributable end to end. The caller's trace ID is kept when valid
// (a blob fetch on a request path); background work gets a fresh one.
// The span ID is always fresh: it names this hop.
func injectTraceparent(req *http.Request, traceID string) {
	if !obs.ValidTraceID(traceID) {
		traceID = obs.NewTraceID()
	}
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(traceID, obs.NewSpanID(), true))
}

// Peer is one statically configured cluster member.
type Peer struct {
	ID  string
	URL string // base URL, no trailing slash
}

// State is a peer's last observed health.
type State int32

const (
	// StateUp: last health poll answered "ok".
	StateUp State = iota
	// StateDegraded: the peer answered, but its store circuit breaker
	// has tripped (memory-only mode). Routing prefers other owners.
	StateDegraded
	// StateDown: the peer did not answer, or a forward to it failed.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	default:
		return "down"
	}
}

// Config configures a Cluster.
type Config struct {
	SelfID string // this node's ID; must appear in Peers
	Peers  []Peer // every member of the static cluster, including self

	// ReplicationFactor is the total number of nodes that should hold
	// each blob (owner included). 0 means 2. Values above len(Peers)
	// are clamped.
	ReplicationFactor int
	// HealthInterval is the poll period for peer /healthz. 0 means 2s.
	HealthInterval time.Duration
	// QueueDepth bounds the write-behind replication queue. 0 means 256.
	QueueDepth int
	// AntiEntropyInterval is the period of the anti-entropy repair sweep
	// (jittered ±25% at runtime). 0 disables the sweeper; sweeps can
	// still be driven explicitly via AntiEntropySweepNow.
	AntiEntropyInterval time.Duration
	// AntiEntropyMaxPerSweep caps repairs pushed in one sweep, so repair
	// traffic never crowds out serving. 0 means 128.
	AntiEntropyMaxPerSweep int
	// AntiEntropyPause is slept between repair pushes. 0 means 10ms.
	AntiEntropyPause time.Duration
	// Client is the HTTP client for peer traffic. nil means a client
	// with a 10s timeout.
	Client *http.Client
	// Logf receives diagnostics. nil means silent.
	Logf func(format string, args ...any)
}

// Cluster tracks the static peer set, their health, and the write-
// behind replication queue. Create with New, then Start, then Close.
type Cluster struct {
	self     Peer
	peers    []Peer // sorted by ID, includes self
	others   []Peer // peers minus self, same order
	rf       int
	interval time.Duration
	client   *http.Client
	logf     func(format string, args ...any)

	states    map[string]*atomic.Int32 // peer ID -> State
	reasons   sync.Map                 // peer ID -> string (degraded reason)
	stateHook atomic.Value             // func(id string, st State)

	repl *replicator
	ae   *antiEntropy

	stop     chan struct{}
	stopOnce sync.Once
	done     sync.WaitGroup
}

// New validates the peer set and builds a Cluster. It does not start
// background work; call Start for health polling and replication.
func New(cfg Config) (*Cluster, error) {
	if cfg.SelfID == "" {
		return nil, fmt.Errorf("cluster: empty SelfID")
	}
	if len(cfg.Peers) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 peers, have %d", len(cfg.Peers))
	}
	seen := make(map[string]bool, len(cfg.Peers))
	var self Peer
	peers := make([]Peer, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		if p.ID == "" {
			return nil, fmt.Errorf("cluster: peer with empty ID (url %q)", p.URL)
		}
		if strings.ContainsAny(p.ID, " .,=/") {
			return nil, fmt.Errorf("cluster: peer ID %q contains reserved characters", p.ID)
		}
		if seen[p.ID] {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", p.ID)
		}
		seen[p.ID] = true
		u, err := url.Parse(p.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %s: bad URL %q", p.ID, p.URL)
		}
		p.URL = strings.TrimRight(p.URL, "/")
		peers = append(peers, p)
		if p.ID == cfg.SelfID {
			self = p
		}
	}
	if self.ID == "" {
		return nil, fmt.Errorf("cluster: SelfID %q not in peer set", cfg.SelfID)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })

	rf := cfg.ReplicationFactor
	if rf <= 0 {
		rf = 2
	}
	if rf > len(peers) {
		rf = len(peers)
	}
	interval := cfg.HealthInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}

	c := &Cluster{
		self:     self,
		peers:    peers,
		rf:       rf,
		interval: interval,
		client:   client,
		logf:     logf,
		states:   make(map[string]*atomic.Int32, len(peers)),
		stop:     make(chan struct{}),
	}
	for _, p := range peers {
		c.states[p.ID] = &atomic.Int32{} // optimistic: everyone starts Up
		if p.ID != self.ID {
			c.others = append(c.others, p)
		}
	}
	c.repl = newReplicator(c, depth)
	c.ae = newAntiEntropy(c, cfg.AntiEntropyInterval, cfg.AntiEntropyMaxPerSweep, cfg.AntiEntropyPause)
	return c, nil
}

// Start launches the health poller, the replication worker, and (when
// configured with an interval) the anti-entropy sweeper.
func (c *Cluster) Start() {
	c.done.Add(2)
	go c.pollLoop()
	go c.repl.run()
	if c.ae.interval > 0 {
		c.done.Add(1)
		go c.ae.run()
	}
}

// Close stops background work and waits for it to exit.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.done.Wait()
}

// SelfID returns this node's peer ID.
func (c *Cluster) SelfID() string { return c.self.ID }

// Self returns this node's peer record.
func (c *Cluster) Self() Peer { return c.self }

// Peers returns the full member list (including self), sorted by ID.
func (c *Cluster) Peers() []Peer {
	out := make([]Peer, len(c.peers))
	copy(out, c.peers)
	return out
}

// PeerByID returns the peer with the given ID, if any.
func (c *Cluster) PeerByID(id string) (Peer, bool) {
	for _, p := range c.peers {
		if p.ID == id {
			return p, true
		}
	}
	return Peer{}, false
}

// ReplicationFactor returns the effective (clamped) replication factor.
func (c *Cluster) ReplicationFactor() int { return c.rf }

// State returns the last observed health of a peer. Self is always Up
// from the cluster's perspective — local degradation is advertised via
// /healthz for the other nodes to observe.
func (c *Cluster) State(id string) State {
	if s, ok := c.states[id]; ok {
		return State(s.Load())
	}
	return StateDown
}

// DegradedReason returns the reason string a degraded peer advertised.
func (c *Cluster) DegradedReason(id string) string {
	if v, ok := c.reasons.Load(id); ok {
		return v.(string)
	}
	return ""
}

// SetStateHook installs fn, called (from the poller goroutine and from
// ReportFailure) whenever a peer's observed state changes. Used to
// export per-peer health gauges.
func (c *Cluster) SetStateHook(fn func(id string, st State)) {
	c.stateHook.Store(fn)
}

func (c *Cluster) setState(id string, st State) {
	s, ok := c.states[id]
	if !ok {
		return
	}
	if State(s.Swap(int32(st))) == st {
		return
	}
	c.logf("cluster: peer %s -> %s", id, st)
	if fn, ok := c.stateHook.Load().(func(string, State)); ok && fn != nil {
		fn(id, st)
	}
}

// ReportFailure marks a peer Down immediately — called when a forward
// or replication push fails at request time, so routing stops sending
// traffic there before the next health poll notices.
func (c *Cluster) ReportFailure(id string) {
	if id == c.self.ID {
		return
	}
	c.setState(id, StateDown)
}

// ---- rendezvous hashing ----

// rankScore is FNV-1a over peerID, a separator, and the key. Every node
// computes the identical score for (peer, key), so the ranking needs no
// coordination.
func rankScore(peerID, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(peerID); i++ {
		h ^= uint64(peerID[i])
		h *= prime64
	}
	h ^= 0xff // separator: "ab"+"c" must not collide with "a"+"bc"
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// RankedPeers returns every peer ordered by rendezvous score for key,
// highest first. The order is identical on every node. Health is not
// consulted — see Owner for the effective routing decision.
func (c *Cluster) RankedPeers(key string) []Peer {
	type scored struct {
		p Peer
		s uint64
	}
	sc := make([]scored, len(c.peers))
	for i, p := range c.peers {
		sc[i] = scored{p, rankScore(p.ID, key)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].s != sc[j].s {
			return sc[i].s > sc[j].s
		}
		return sc[i].p.ID < sc[j].p.ID
	})
	out := make([]Peer, len(sc))
	for i, s := range sc {
		out[i] = s.p
	}
	return out
}

// Owner returns the effective owner of key: the first ranked peer that
// is Up. If none is Up, the first ranked peer that is merely degraded
// (it can still compute, memory-only); if every peer looks down, self —
// serving locally beats refusing.
func (c *Cluster) Owner(key string) Peer {
	ranked := c.RankedPeers(key)
	for _, p := range ranked {
		if c.State(p.ID) == StateUp {
			return p
		}
	}
	for _, p := range ranked {
		if c.State(p.ID) != StateDown {
			return p
		}
	}
	return c.self
}

// IsOwner reports whether this node is the effective owner of key.
func (c *Cluster) IsOwner(key string) bool {
	return c.Owner(key).ID == c.self.ID
}

// ReplicaTargets returns the peers (never self) that should hold a copy
// of key: the top ReplicationFactor ranked peers for the key, skipping
// peers currently marked Down. The compute node pushes to all of them
// even when it is not itself in the ranked set, so the key's owner by
// hash always converges on holding the blob.
func (c *Cluster) ReplicaTargets(key string) []Peer {
	ranked := c.RankedPeers(key)
	if len(ranked) > c.rf {
		ranked = ranked[:c.rf]
	}
	out := make([]Peer, 0, len(ranked))
	for _, p := range ranked {
		if p.ID == c.self.ID || c.State(p.ID) == StateDown {
			continue
		}
		out = append(out, p)
	}
	return out
}

// ---- health polling ----

// healthView mirrors the server's /healthz JSON, loosely.
type healthView struct {
	Status   string `json:"status"`
	NodeID   string `json:"node_id"`
	Degraded string `json:"degraded"`
}

func (c *Cluster) pollLoop() {
	defer c.done.Done()
	c.pollAll()
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.pollAll()
		}
	}
}

func (c *Cluster) pollAll() {
	var wg sync.WaitGroup
	for _, p := range c.others {
		wg.Add(1)
		go func(p Peer) {
			defer wg.Done()
			c.pollPeer(p)
		}(p)
	}
	wg.Wait()
}

func (c *Cluster) pollPeer(p Peer) {
	req, err := http.NewRequest(http.MethodGet, p.URL+"/healthz", nil)
	if err != nil {
		c.setState(p.ID, StateDown)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.setState(p.ID, StateDown)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		c.setState(p.ID, StateDown)
		return
	}
	var hv healthView
	if err := json.Unmarshal(body, &hv); err != nil {
		// Pre-cluster layoutd answered plain "ok\n"; accept it.
		if strings.HasPrefix(strings.TrimSpace(string(body)), "ok") {
			c.setState(p.ID, StateUp)
			return
		}
		c.setState(p.ID, StateDown)
		return
	}
	switch hv.Status {
	case "ok":
		c.reasons.Delete(p.ID)
		c.setState(p.ID, StateUp)
	case "degraded":
		c.reasons.Store(p.ID, hv.Degraded)
		c.setState(p.ID, StateDegraded)
	default:
		c.setState(p.ID, StateDown)
	}
}
