package experiments

import (
	"codelayout/internal/parallel"
	"codelayout/internal/progen"
	"codelayout/internal/textplot"
)

// Figure4Row is one program's three bars in Figure 4.
type Figure4Row struct {
	Name                          string
	MissSolo, MissGCC, MissGamess float64
}

// Figure4Result reproduces Figure 4: L1 instruction cache miss ratios of
// the 29 screening programs under solo run and under co-run with the gcc
// and gamess probes.
type Figure4Result struct {
	Rows []Figure4Row
}

// Figure4 measures the screening suite.
func Figure4(w *Workspace) (Figure4Result, error) {
	return Figure4On(w, nil)
}

// Figure4On measures a subset of the screening suite (nil means all).
func Figure4On(w *Workspace, names []string) (Figure4Result, error) {
	var res Figure4Result
	suite, err := w.benchSubset(names)
	if err != nil {
		return res, err
	}
	gcc, err := w.Bench(progen.ProbeGCC)
	if err != nil {
		return res, err
	}
	gamess, err := w.Bench(progen.ProbeGamess)
	if err != nil {
		return res, err
	}
	// Each program's three runs are independent of every other program's;
	// fan out per program and collect rows in suite order.
	rows, err := parallel.Map(w.Workers(), len(suite), func(i int) (Figure4Row, error) {
		b := suite[i]
		solo, err := b.HWSolo(Baseline)
		if err != nil {
			return Figure4Row{}, err
		}
		c1, err := HWCorunTimed(b, Baseline, gcc, Baseline)
		if err != nil {
			return Figure4Row{}, err
		}
		c2, err := HWCorunTimed(b, Baseline, gamess, Baseline)
		if err != nil {
			return Figure4Row{}, err
		}
		return Figure4Row{
			Name:       b.Name(),
			MissSolo:   solo.Counters.ICacheMissRatio(),
			MissGCC:    c1.Counters.ICacheMissRatio(),
			MissGamess: c2.Counters.ICacheMissRatio(),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// NonTrivialCount returns how many programs exceed the non-trivial solo
// miss threshold (the paper: 9 of 29).
func (r Figure4Result) NonTrivialCount() int {
	n := 0
	for _, row := range r.Rows {
		if row.MissSolo >= NonTrivialMiss {
			n++
		}
	}
	return n
}

// String renders the figure as three grouped ASCII charts.
func (r Figure4Result) String() string {
	out := "Figure 4: L1 instruction cache miss ratios under solo- and co-run\n\n"
	for _, series := range []struct {
		title string
		pick  func(Figure4Row) float64
	}{
		{"solo", func(x Figure4Row) float64 { return x.MissSolo }},
		{"403.gcc as probe", func(x Figure4Row) float64 { return x.MissGCC }},
		{"416.gamess as probe", func(x Figure4Row) float64 { return x.MissGamess }},
	} {
		c := &textplot.Chart{Title: series.title, Width: 40, Format: "%.2f%%"}
		for _, row := range r.Rows {
			c.Add(row.Name, 100*series.pick(row))
		}
		out += c.String() + "\n"
	}
	return out
}
