package layout

import (
	"reflect"
	"testing"

	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// replayAllNext drains up to maxBlocks occurrences through the Next
// callback path and returns the emitted lines.
func replayAllNext(r *Replayer, maxBlocks int) []int64 {
	var lines []int64
	for i := 0; i < maxBlocks; i++ {
		if _, ok := r.Next(func(ln int64) { lines = append(lines, ln) }); !ok {
			break
		}
	}
	return lines
}

// replayerParityLayouts returns the layouts the parity tests replay
// against: the stub-free original and a reversed block layout that
// carries stubs, appended jumps and displaced fall-throughs.
func replayerParityLayouts(t *testing.T) map[string]*Layout {
	t.Helper()
	p := fig3Prog(t)
	var rev []ir.BlockID
	for b := p.NumBlocks() - 1; b >= 0; b-- {
		rev = append(rev, ir.BlockID(b))
	}
	return map[string]*Layout{
		"original": Original(p),
		"reversed": ReorderBlocks(p, rev),
	}
}

// parityTrace is a fixed pseudo-random block sequence covering calls,
// branches and repeats; parity holds for any sequence because both paths
// apply the same per-occurrence rules.
func parityTrace(n, numBlocks int) *trace.Trace {
	syms := make([]int32, n)
	state := uint32(12345)
	for i := range syms {
		state = state*1664525 + 1013904223
		syms[i] = int32(state % uint32(numBlocks))
	}
	return trace.New(syms)
}

func TestAppendLinesMatchesNext(t *testing.T) {
	for name, l := range replayerParityLayouts(t) {
		tr := parityTrace(300, len(l.Prog.Blocks))
		want := replayAllNext(NewReplayer(l, tr, 64, false), tr.Len())
		for _, batch := range []int{1, 7, 64, 1024} {
			r := NewReplayer(l, tr, 64, false)
			var got []int64
			total := 0
			for {
				lines, blocks := r.AppendLines(nil, batch)
				if blocks == 0 {
					break
				}
				got = append(got, lines...)
				total += blocks
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s batch=%d: AppendLines stream diverges from Next", name, batch)
			}
			if total != tr.Len() {
				t.Fatalf("%s batch=%d: replayed %d blocks, want %d", name, batch, total, tr.Len())
			}
			if !r.Done() {
				t.Fatalf("%s batch=%d: replayer not done", name, batch)
			}
		}
	}
}

func TestAppendLinesMatchesNextWrapping(t *testing.T) {
	const occurrences = 1000
	for name, l := range replayerParityLayouts(t) {
		tr := parityTrace(37, len(l.Prog.Blocks)) // short trace forces many laps
		rNext := NewReplayer(l, tr, 64, true)
		want := replayAllNext(rNext, occurrences)

		r := NewReplayer(l, tr, 64, true)
		var got []int64
		for replayed := 0; replayed < occurrences; {
			batch := 13
			if rest := occurrences - replayed; rest < batch {
				batch = rest
			}
			lines, blocks := r.AppendLines(nil, batch)
			got = append(got, lines...)
			replayed += blocks
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: wrapping AppendLines stream diverges from Next", name)
		}
		if r.Laps() != rNext.Laps() {
			t.Fatalf("%s: laps = %d, want %d", name, r.Laps(), rNext.Laps())
		}
	}
}

func TestAppendLinesEmptyTrace(t *testing.T) {
	p := fig3Prog(t)
	r := NewReplayer(Original(p), trace.New(nil), 64, true)
	lines, blocks := r.AppendLines(nil, 8)
	if blocks != 0 || len(lines) != 0 {
		t.Fatalf("empty trace replayed %d blocks, %d lines", blocks, len(lines))
	}
}

// TestAppendLinesMixedWithNext interleaves the two paths on one replayer:
// the shared cursor state (pos, prev, laps) must stay consistent.
func TestAppendLinesMixedWithNext(t *testing.T) {
	for name, l := range replayerParityLayouts(t) {
		tr := parityTrace(200, len(l.Prog.Blocks))
		want := replayAllNext(NewReplayer(l, tr, 64, false), tr.Len())

		r := NewReplayer(l, tr, 64, false)
		var got []int64
		for {
			lines, blocks := r.AppendLines(nil, 9)
			got = append(got, lines...)
			if blocks == 0 {
				break
			}
			if _, ok := r.Next(func(ln int64) { got = append(got, ln) }); !ok {
				break
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: mixed Next/AppendLines stream diverges", name)
		}
	}
}
