package cachesim

import (
	"math/rand"
	"testing"

	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/stackdist"
	"codelayout/internal/trace"
)

func tinyCfg(assoc int) Config {
	return Config{SizeBytes: 4 * 64 * assoc, Assoc: assoc, LineBytes: 64} // 4 sets
}

func TestConfigValidate(t *testing.T) {
	if err := L1IDefault.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if L1IDefault.Sets() != 128 {
		t.Errorf("Sets = %d, want 128", L1IDefault.Sets())
	}
	bad := Config{SizeBytes: 1000, Assoc: 4, LineBytes: 64}
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-divisible size")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("accepted zero config")
	}
}

func TestDirectMappedConflict(t *testing.T) {
	cfg := tinyCfg(1) // 4 sets, direct mapped
	c := New(cfg)
	var st Stats
	// Lines 0 and 4 map to set 0 and evict each other.
	for i := 0; i < 10; i++ {
		c.Access(0, &st)
		c.Access(4, &st)
	}
	if st.Misses != 20 {
		t.Errorf("misses = %d, want 20 (ping-pong)", st.Misses)
	}
	// Lines 0 and 1 map to different sets: only cold misses.
	c2 := New(cfg)
	var st2 Stats
	for i := 0; i < 10; i++ {
		c2.Access(0, &st2)
		c2.Access(1, &st2)
	}
	if st2.Misses != 2 {
		t.Errorf("misses = %d, want 2", st2.Misses)
	}
}

func TestSetAssociativeLRU(t *testing.T) {
	cfg := tinyCfg(2) // 4 sets, 2-way
	c := New(cfg)
	var st Stats
	// Three lines in set 0: 0, 4, 8. LRU evicts the oldest.
	c.Access(0, &st)
	c.Access(4, &st)
	c.Access(8, &st) // evicts 0
	if c.Contains(0) {
		t.Error("line 0 should be evicted")
	}
	if !c.Contains(4) || !c.Contains(8) {
		t.Error("lines 4, 8 should be resident")
	}
	c.Access(4, &st) // 4 becomes MRU
	c.Access(0, &st) // evicts 8
	if c.Contains(8) || !c.Contains(4) {
		t.Error("LRU order wrong after touch")
	}
}

// TestLRUMatchesStackDistance cross-validates the cache against the
// stack-distance oracle: in a fully associative LRU cache of A lines, an
// access misses iff its reuse stack distance exceeds A.
func TestLRUMatchesStackDistance(t *testing.T) {
	const assoc = 8
	cfg := Config{SizeBytes: assoc * 64, Assoc: assoc, LineBytes: 64} // 1 set
	c := New(cfg)
	rng := rand.New(rand.NewSource(31))
	lines := make([]int32, 4000)
	for i := range lines {
		lines[i] = int32(rng.Intn(24))
	}
	dists := stackdist.Distances(lines)
	var st Stats
	for i, ln := range lines {
		hit := c.Access(int64(ln), &st)
		wantHit := dists[i] != stackdist.Infinite && dists[i] <= assoc
		if hit != wantHit {
			t.Fatalf("access %d (line %d, dist %d): hit=%v want %v", i, ln, dists[i], hit, wantHit)
		}
	}
}

func TestFlush(t *testing.T) {
	c := New(tinyCfg(2))
	var st Stats
	c.Access(3, &st)
	c.Flush()
	if c.Contains(3) {
		t.Error("line survived flush")
	}
}

func TestPrefetch(t *testing.T) {
	c := New(tinyCfg(2))
	var st Stats
	c.Prefetch(5, &st)
	if st.PrefetchFills != 1 {
		t.Errorf("PrefetchFills = %d, want 1", st.PrefetchFills)
	}
	// Demand access to the prefetched line hits and counts PrefetchHits.
	if hit := c.Access(5, &st); !hit {
		t.Error("prefetched line missed")
	}
	if st.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", st.PrefetchHits)
	}
	// Second access is a plain hit.
	c.Access(5, &st)
	if st.PrefetchHits != 1 {
		t.Errorf("PrefetchHits counted twice")
	}
	// Prefetching a present line is a no-op.
	c.Prefetch(5, &st)
	if st.PrefetchFills != 1 {
		t.Error("prefetch refilled a present line")
	}
}

func TestStatsAddAndRatio(t *testing.T) {
	a := Stats{Accesses: 10, Misses: 2}
	b := Stats{Accesses: 5, Misses: 3, PrefetchHits: 1}
	a.Add(b)
	if a.Accesses != 15 || a.Misses != 5 || a.PrefetchHits != 1 {
		t.Errorf("Add wrong: %+v", a)
	}
	if got := a.MissRatio(); got != 5.0/15.0 {
		t.Errorf("MissRatio = %v", got)
	}
	if (Stats{}).MissRatio() != 0 {
		t.Error("idle MissRatio != 0")
	}
}

// loopProgram builds a program that cyclically executes `blocks` basic
// blocks of the given size, `iters` times.
func loopProgram(t testing.TB, blocks int, size int32, iters int32) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("loop", 0)
	f := b.Func("main")
	bbs := make([]*ir.BlockBuilder, blocks)
	for i := range bbs {
		bbs[i] = f.Block("b", size)
	}
	latch := f.Block("latch", 4)
	exit := f.Block("exit", 4)
	for i := 0; i < blocks-1; i++ {
		bbs[i].Jump(bbs[i+1])
	}
	bbs[blocks-1].Jump(latch)
	latch.Loop(iters, bbs[0], exit)
	exit.Exit()
	return b.MustBuild()
}

func runTrace(t testing.TB, p *ir.Program) *trace.Trace {
	t.Helper()
	res, err := interpRun(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimulateSoloWorkingSetFits(t *testing.T) {
	// 16 blocks x 64 B = 1 KB loop: fits a 32 KB cache, so only cold
	// misses.
	p := loopProgram(t, 16, 64, 200)
	tr := runTrace(t, p)
	l := layout.Original(p)
	res := SimulateSolo(L1IDefault, layout.NewReplayer(l, tr, 64, false))
	if res.Stats.Misses > 40 {
		t.Errorf("fitting loop missed %d times, want only cold misses", res.Stats.Misses)
	}
	if res.Stats.Accesses == 0 || res.Blocks == 0 {
		t.Error("no activity simulated")
	}
}

func TestSimulateSoloThrashing(t *testing.T) {
	// 1024 blocks x 64 B = 64 KB loop: twice the cache, LRU thrashes.
	p := loopProgram(t, 1024, 64, 20)
	tr := runTrace(t, p)
	l := layout.Original(p)
	res := SimulateSolo(L1IDefault, layout.NewReplayer(l, tr, 64, false))
	if mr := res.Stats.MissRatio(); mr < 0.9 {
		t.Errorf("thrashing loop miss ratio = %v, want ~1", mr)
	}
}

func TestSimulateCorunContention(t *testing.T) {
	// Each program loops over 20 KB; alone each fits in 32 KB, together
	// they thrash.
	p := loopProgram(t, 320, 64, 60)
	tr := runTrace(t, p)
	l := layout.Original(p)

	solo := SimulateSolo(L1IDefault, layout.NewReplayer(l, tr, 64, false))
	co := SimulateCorun(L1IDefault,
		layout.NewReplayer(l, tr, 64, false),
		layout.NewReplayer(l, tr, 64, true))

	soloMR := solo.Stats.MissRatio()
	coMR := co.PerThread[0].MissRatio()
	if coMR <= soloMR*2 {
		t.Errorf("co-run miss ratio %v not substantially above solo %v", coMR, soloMR)
	}
	if co.Blocks[0] == 0 || co.Blocks[1] == 0 {
		t.Error("both threads must progress")
	}
}

func TestSimulateCorunPeerWraps(t *testing.T) {
	long := loopProgram(t, 64, 64, 400)
	short := loopProgram(t, 64, 64, 4)
	trLong := runTrace(t, long)
	trShort := runTrace(t, short)
	lLong := layout.Original(long)
	lShort := layout.Original(short)
	res := SimulateCorun(L1IDefault,
		layout.NewReplayer(lLong, trLong, 64, false),
		layout.NewReplayer(lShort, trShort, 64, true))
	if res.PeerLaps == 0 {
		t.Error("short peer should wrap while long primary runs")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(L1IDefault)
	var st Stats
	rng := rand.New(rand.NewSource(1))
	lines := make([]int64, 8192)
	for i := range lines {
		lines[i] = int64(rng.Intn(1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(lines[i&8191], &st)
	}
}
