package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"io"
)

// Digest returns the hex SHA-256 of the trace's canonical CLTR encoding.
// Because WriteTo is deterministic, two traces have equal digests exactly
// when they hold the same occurrence sequence — the property layoutd's
// content-addressed result cache is keyed on.
func (t *Trace) Digest() string {
	h := sha256.New()
	// Writing to a hash cannot fail.
	_, _ = t.WriteTo(h)
	return hex.EncodeToString(h.Sum(nil))
}

// HashingReader tees every byte read from R into H, so a streamed upload
// can be decoded and fingerprinted in one pass, and counts the bytes for
// telemetry.
type HashingReader struct {
	R io.Reader
	H hash.Hash
	n int64
}

// NewHashingReader wraps r with a SHA-256 hasher.
func NewHashingReader(r io.Reader) *HashingReader {
	return &HashingReader{R: r, H: sha256.New()}
}

func (h *HashingReader) Read(p []byte) (int, error) {
	n, err := h.R.Read(p)
	if n > 0 {
		h.H.Write(p[:n])
		h.n += int64(n)
	}
	return n, err
}

// BytesRead returns the number of bytes consumed so far.
func (h *HashingReader) BytesRead() int64 { return h.n }

// Sum returns the hex digest of the bytes read so far.
func (h *HashingReader) Sum() string { return hex.EncodeToString(h.H.Sum(nil)) }
