// Package textplot renders the paper's figures as ASCII bar charts so
// the benchmark harness can regenerate every figure, not just the
// tables, in a terminal.
package textplot

import (
	"fmt"
	"strings"
)

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Chart is a horizontal bar chart.
type Chart struct {
	Title string
	Bars  []Bar
	// Width is the maximum bar width in characters (default 50).
	Width int
	// Format formats the value shown after each bar; default "%.2f".
	Format string
	// Baseline, when non-zero (e.g. 1.0 for speedups), draws bars
	// relative to the baseline: values above grow right from it,
	// values below are marked with '<'.
	Baseline float64
}

// Add appends a bar.
func (c *Chart) Add(label string, v float64) { c.Bars = append(c.Bars, Bar{label, v}) }

// String renders the chart.
func (c *Chart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	format := c.Format
	if format == "" {
		format = "%.2f"
	}
	labelW := 0
	maxDev := 0.0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		dev := b.Value - c.Baseline
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDev {
			maxDev = dev
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title + "\n")
	}
	for _, b := range c.Bars {
		dev := b.Value - c.Baseline
		n := 0
		if maxDev > 0 {
			n = int(float64(width)*abs(dev)/maxDev + 0.5)
		}
		mark := strings.Repeat("#", n)
		if dev < 0 {
			mark = strings.Repeat("<", n)
		}
		fmt.Fprintf(&sb, "%-*s | %-*s "+format+"\n", labelW, b.Label, width, mark, b.Value)
	}
	return sb.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Matrix renders a square labeled grid of values — e.g. the pairwise
// interference matrix behind a schedule — with right-aligned numeric
// cells so columns line up in a terminal.
type Matrix struct {
	Title  string
	Labels []string
	Cells  [][]float64
	// Format formats each cell; default "%.3g".
	Format string
}

// String renders the matrix.
func (m *Matrix) String() string {
	format := m.Format
	if format == "" {
		format = "%.3g"
	}
	n := len(m.Cells)
	labels := make([]string, n)
	for i := range labels {
		if i < len(m.Labels) {
			labels[i] = m.Labels[i]
		} else {
			labels[i] = fmt.Sprintf("#%d", i)
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	cells := make([][]string, n)
	cellW := labelW
	for i, row := range m.Cells {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = fmt.Sprintf(format, v)
			if len(cells[i][j]) > cellW {
				cellW = len(cells[i][j])
			}
		}
	}
	var sb strings.Builder
	if m.Title != "" {
		sb.WriteString(m.Title + "\n")
	}
	fmt.Fprintf(&sb, "%-*s", labelW, "")
	for _, l := range labels {
		fmt.Fprintf(&sb, " %*s", cellW, l)
	}
	sb.WriteByte('\n')
	for i, row := range cells {
		fmt.Fprintf(&sb, "%-*s", labelW, labels[i])
		for _, c := range row {
			fmt.Fprintf(&sb, " %*s", cellW, c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Span is one labeled interval on a waterfall timeline.
type Span struct {
	Label string
	// Start is the offset from the timeline origin; Dur is the span
	// length, in the same (arbitrary) unit. Dur < 0 marks a span still
	// in progress, drawn open-ended to the edge of the timeline.
	Start, Dur float64
}

// Waterfall renders a span timeline — e.g. a layoutd job trace — as an
// ASCII waterfall: one row per span, bars positioned by start offset on
// a shared time axis.
type Waterfall struct {
	Title string
	Spans []Span
	// Width is the timeline width in characters (default 50).
	Width int
	// Format formats the start/duration annotation after each bar;
	// default "%.1f".
	Format string
}

// Add appends a span.
func (w *Waterfall) Add(label string, start, dur float64) {
	w.Spans = append(w.Spans, Span{label, start, dur})
}

// String renders the waterfall.
func (w *Waterfall) String() string {
	width := w.Width
	if width <= 0 {
		width = 50
	}
	format := w.Format
	if format == "" {
		format = "%.1f"
	}
	labelW, total := 0, 0.0
	for _, sp := range w.Spans {
		if len(sp.Label) > labelW {
			labelW = len(sp.Label)
		}
		end := sp.Start + sp.Dur
		if sp.Dur < 0 {
			end = sp.Start
		}
		if end > total {
			total = end
		}
	}
	var sb strings.Builder
	if w.Title != "" {
		sb.WriteString(w.Title + "\n")
	}
	for _, sp := range w.Spans {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		off, n := 0, width
		if total > 0 {
			off = int(float64(width) * sp.Start / total)
			if off >= width {
				off = width - 1
			}
			if sp.Dur >= 0 {
				n = int(float64(width)*sp.Dur/total + 0.5)
			} else {
				n = width - off // open-ended: runs to the timeline edge
			}
		}
		if n < 1 {
			n = 1 // even a sub-cell span stays visible
		}
		fill := byte('#')
		if sp.Dur < 0 {
			fill = '>'
		}
		for i := off; i < off+n && i < width; i++ {
			row[i] = fill
		}
		dur := format
		if sp.Dur >= 0 {
			dur = fmt.Sprintf("+"+format, sp.Dur)
		} else {
			dur = "+?"
		}
		fmt.Fprintf(&sb, "%-*s |%s| "+format+" %s\n", labelW, sp.Label, row, sp.Start, dur)
	}
	return sb.String()
}
