package core

import (
	"math/rand"
	"testing"

	"codelayout/internal/cachesim"
	"codelayout/internal/layout"
	"codelayout/internal/progen"
)

// randomSpec draws a small but structurally varied program spec.
func randomSpec(rng *rand.Rand, i int) progen.Spec {
	funcs := 6 + rng.Intn(20)
	fpp := 2 + rng.Intn(funcs/2+1)
	phases := 1 + rng.Intn(3)
	return progen.Spec{
		Name:           "prop",
		Seed:           rng.Int63(),
		Funcs:          funcs,
		HotChain:       [2]int{1 + rng.Intn(4), 5 + rng.Intn(10)},
		HotBytes:       [2]int{8 + rng.Intn(32), 48 + rng.Intn(64)},
		ColdBytes:      [2]int{8 + rng.Intn(32), 48 + rng.Intn(64)},
		ColdProb:       rng.Float64() * 0.2,
		InnerTrips:     [2]int{1 + rng.Intn(4), 5 + rng.Intn(10)},
		Phases:         phases,
		FuncsPerPhase:  fpp,
		PhaseLoops:     1 + rng.Intn(8),
		CallsPerLoop:   1 + rng.Intn(2*fpp),
		CorrelatedFrac: rng.Float64(),
		Helpers:        rng.Intn(4),
		HelperProb:     rng.Float64() * 0.1,
		DataCPI:        rng.Float64() * 0.5,
	}
}

// TestRandomProgramsFullPipeline is the repository's end-to-end property
// test: for randomized program structures, every optimizer must produce
// a valid layout, and replaying the evaluation trace through any layout
// must fetch at least the blocks' own bytes and exactly the same block
// sequence semantics (the trace is layout-independent by construction,
// so only addresses may differ).
func TestRandomProgramsFullPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(20140814)) // ICPP 2014's year, why not
	for i := 0; i < 12; i++ {
		spec := randomSpec(rng, i)
		p, err := progen.Generate(spec)
		if err != nil {
			t.Fatalf("case %d: generate: %v (spec %+v)", i, err, spec)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("case %d: invalid program: %v", i, err)
		}
		prof, err := ProfileProgram(p, TrainSeed)
		if err != nil {
			t.Fatalf("case %d: profile: %v", i, err)
		}
		var execBytes int64
		for _, s := range prof.Blocks.Syms {
			execBytes += int64(p.Blocks[s].Size)
		}
		for _, o := range AllWithBaselines() {
			l, rep, err := o.Optimize(prof)
			if err != nil {
				t.Fatalf("case %d %s: %v", i, o.Name(), err)
			}
			if err := l.Validate(); err != nil {
				t.Fatalf("case %d %s: invalid layout: %v", i, o.Name(), err)
			}
			if rep.SeqLen <= 0 {
				t.Fatalf("case %d %s: empty sequence", i, o.Name())
			}
			r := layout.NewReplayer(l, prof.Blocks, 64, false)
			var fetched int64
			var blocks int64
			for {
				n, ok := r.Next(func(int64) {})
				if !ok {
					break
				}
				fetched += int64(n)
				blocks++
			}
			if blocks != int64(prof.Blocks.Len()) {
				t.Fatalf("case %d %s: replayed %d blocks, want %d", i, o.Name(), blocks, prof.Blocks.Len())
			}
			if fetched < execBytes {
				t.Fatalf("case %d %s: fetched %d bytes < executed %d", i, o.Name(), fetched, execBytes)
			}
			// Layout overhead is bounded: stubs + one jump per block.
			maxOverhead := execBytes + int64(prof.Blocks.Len()+p.NumFuncs())*layout.JumpBytes
			if fetched > maxOverhead {
				t.Fatalf("case %d %s: fetched %d bytes > bound %d", i, o.Name(), fetched, maxOverhead)
			}
		}
	}
}

// TestRandomProgramsSimulatorAgreement checks a cross-model invariant
// on random programs: the simulated miss count of any layout is bounded
// below by the number of distinct lines (cold misses) and above by the
// number of accesses.
func TestRandomProgramsSimulatorAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		spec := randomSpec(rng, i)
		p, err := progen.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ProfileProgram(p, EvalSeed)
		if err != nil {
			t.Fatal(err)
		}
		for _, build := range []func() *layout.Layout{
			func() *layout.Layout { return layout.Original(p) },
			func() *layout.Layout {
				l, _, err := BBAffinity().Optimize(prof)
				if err != nil {
					t.Fatal(err)
				}
				return l
			},
		} {
			l := build()
			res := cachesim.SimulateSolo(cachesim.L1IDefault,
				layout.NewReplayer(l, prof.Blocks, 64, false))
			distinct := countDistinctLines(l, prof)
			if res.Stats.Misses < int64(distinct) {
				t.Fatalf("case %d: misses %d < cold lines %d", i, res.Stats.Misses, distinct)
			}
			if res.Stats.Misses > res.Stats.Accesses {
				t.Fatalf("case %d: misses exceed accesses", i)
			}
		}
	}
}

func countDistinctLines(l *layout.Layout, prof *Profile) int {
	lines := make(map[int64]struct{})
	r := layout.NewReplayer(l, prof.Blocks, 64, false)
	for {
		if _, ok := r.Next(func(ln int64) { lines[ln] = struct{}{} }); !ok {
			break
		}
	}
	return len(lines)
}
