package ir

import "fmt"

// Validate checks the structural invariants the rest of the repository
// relies on:
//
//   - block and function IDs are dense and consistent,
//   - every control transfer target exists,
//   - intra-procedural targets (Jump, Branch, Call.Next) stay inside the
//     block's own function,
//   - every block has a terminator and a positive size,
//   - effect and condition register indices are within NumGlobals.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("ir: program %q has no functions", p.Name)
	}
	for i, f := range p.Funcs {
		if f == nil {
			return fmt.Errorf("ir: nil function at index %d", i)
		}
		if f.ID != FuncID(i) {
			return fmt.Errorf("ir: function %q has ID %d at index %d", f.Name, f.ID, i)
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %q has no blocks", f.Name)
		}
		for _, id := range f.Blocks {
			if id < 0 || int(id) >= len(p.Blocks) {
				return fmt.Errorf("ir: function %q references block %d out of range", f.Name, id)
			}
			if p.Blocks[id].Fn != f.ID {
				return fmt.Errorf("ir: block %d listed in function %q but belongs to function %d",
					id, f.Name, p.Blocks[id].Fn)
			}
		}
	}
	seen := make(map[BlockID]bool, len(p.Blocks))
	for _, f := range p.Funcs {
		for _, id := range f.Blocks {
			if seen[id] {
				return fmt.Errorf("ir: block %d listed twice", id)
			}
			seen[id] = true
		}
	}
	for i, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("ir: nil block at index %d", i)
		}
		if b.ID != BlockID(i) {
			return fmt.Errorf("ir: block %q has ID %d at index %d", b.Name, b.ID, i)
		}
		if !seen[b.ID] {
			return fmt.Errorf("ir: block %d not listed in any function", b.ID)
		}
		if b.Size <= 0 {
			return fmt.Errorf("ir: block %s has non-positive size %d", b, b.Size)
		}
		if b.Term == nil {
			return fmt.Errorf("ir: block %s has no terminator", b)
		}
		if err := p.validateTerm(b); err != nil {
			return err
		}
		for _, e := range b.Effects {
			if err := p.validateEffect(b, e); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateTerm(b *Block) error {
	local := func(id BlockID, what string) error {
		if id < 0 || int(id) >= len(p.Blocks) {
			return fmt.Errorf("ir: block %s %s target %d out of range", b, what, id)
		}
		if p.Blocks[id].Fn != b.Fn {
			return fmt.Errorf("ir: block %s %s target %d crosses function boundary", b, what, id)
		}
		return nil
	}
	switch t := b.Term.(type) {
	case Jump:
		return local(t.Target, "jump")
	case Branch:
		if t.Cond == nil {
			return fmt.Errorf("ir: block %s branch has nil condition", b)
		}
		if err := p.validateCond(b, t.Cond); err != nil {
			return err
		}
		if err := local(t.Taken, "branch taken"); err != nil {
			return err
		}
		return local(t.Fall, "branch fall")
	case Call:
		if t.Callee < 0 || int(t.Callee) >= len(p.Funcs) {
			return fmt.Errorf("ir: block %s calls function %d out of range", b, t.Callee)
		}
		return local(t.Next, "call continuation")
	case Return, Exit:
		return nil
	default:
		return fmt.Errorf("ir: block %s has unknown terminator %T", b, b.Term)
	}
}

func (p *Program) validateCond(b *Block, c Cond) error {
	reg := func(r int32) error {
		if r < 0 || int(r) >= p.NumGlobals {
			return fmt.Errorf("ir: block %s condition uses global %d out of range", b, r)
		}
		return nil
	}
	switch t := c.(type) {
	case Always:
		return nil
	case Prob:
		if t.P < 0 || t.P > 1 {
			return fmt.Errorf("ir: block %s branch probability %v out of [0,1]", b, t.P)
		}
		return nil
	case GlobalEq:
		return reg(t.Reg)
	case GlobalLT:
		return reg(t.Reg)
	case Counter:
		if t.Trips < 1 {
			return fmt.Errorf("ir: block %s loop trip count %d < 1", b, t.Trips)
		}
		return nil
	default:
		return fmt.Errorf("ir: block %s has unknown condition %T", b, c)
	}
}

func (p *Program) validateEffect(b *Block, e Effect) error {
	reg := func(r int32) error {
		if r < 0 || int(r) >= p.NumGlobals {
			return fmt.Errorf("ir: block %s effect uses global %d out of range", b, r)
		}
		return nil
	}
	switch t := e.(type) {
	case SetGlobal:
		return reg(t.Reg)
	case AddGlobal:
		return reg(t.Reg)
	case SetGlobalChoice:
		if len(t.Choices) == 0 {
			return fmt.Errorf("ir: block %s choice effect has no choices", b)
		}
		return reg(t.Reg)
	default:
		return fmt.Errorf("ir: block %s has unknown effect %T", b, e)
	}
}
