package core

import (
	"reflect"
	"strings"
	"testing"

	"codelayout/internal/cachesim"
	"codelayout/internal/layout"
	"codelayout/internal/progen"
)

func profileNamed(t testing.TB, name string) *Profile {
	t.Helper()
	p, err := LoadProgram(name)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileProgram(p, TrainSeed)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestOptimizerNames(t *testing.T) {
	want := map[string]bool{
		"func-affinity": true, "bb-affinity": true,
		"func-trg": true, "bb-trg": true,
	}
	for _, o := range AllOptimizers() {
		if !want[o.Name()] {
			t.Errorf("unexpected optimizer name %q", o.Name())
		}
		delete(want, o.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing optimizers: %v", want)
	}
}

func TestAllOptimizersProduceValidLayouts(t *testing.T) {
	prof := profileNamed(t, "458.sjeng")
	for _, o := range AllOptimizers() {
		l, rep, err := o.Optimize(prof)
		if err != nil {
			t.Errorf("%s: %v", o.Name(), err)
			continue
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: invalid layout: %v", o.Name(), err)
		}
		if rep.SeqLen == 0 {
			t.Errorf("%s: empty model sequence", o.Name())
		}
		if rep.TraceLen == 0 || rep.Retention <= 0 || rep.Retention > 1 {
			t.Errorf("%s: bad report %+v", o.Name(), rep)
		}
		wantStubs := o.Gran == GranBasicBlock
		if l.HasStubs() != wantStubs {
			t.Errorf("%s: HasStubs = %v, want %v", o.Name(), l.HasStubs(), wantStubs)
		}
	}
}

// evalMiss replays the evaluation-input trace through a layout and
// returns the simulated solo I-cache miss ratio.
func evalMiss(t testing.TB, prof *Profile, l *layout.Layout) float64 {
	t.Helper()
	evalProf, err := ProfileProgram(prof.Prog, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := cachesim.SimulateSolo(cachesim.L1IDefault,
		layout.NewReplayer(l, evalProf.Blocks, cachesim.L1IDefault.LineBytes, false))
	return res.Stats.MissRatio()
}

func TestBBAffinityReducesMisses(t *testing.T) {
	prof := profileNamed(t, "445.gobmk")
	base := evalMiss(t, prof, layout.Original(prof.Prog))
	l, _, err := BBAffinity().Optimize(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := evalMiss(t, prof, l)
	t.Logf("gobmk solo miss: base=%.3f%% bb-affinity=%.3f%%", 100*base, 100*opt)
	if opt >= base*0.8 {
		t.Errorf("bb-affinity reduced misses only from %v to %v (<20%%)", base, opt)
	}
}

func TestFuncAffinityReducesMisses(t *testing.T) {
	prof := profileNamed(t, "445.gobmk")
	base := evalMiss(t, prof, layout.Original(prof.Prog))
	l, _, err := FuncAffinity().Optimize(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := evalMiss(t, prof, l)
	t.Logf("gobmk solo miss: base=%.3f%% func-affinity=%.3f%%", 100*base, 100*opt)
	if opt >= base {
		t.Errorf("func-affinity did not reduce misses: %v -> %v", base, opt)
	}
}

func TestOptimizeRejectsNilProfile(t *testing.T) {
	if _, _, err := BBAffinity().Optimize(nil); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestProfileUsesSeed(t *testing.T) {
	p, err := LoadProgram("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ProfileProgram(p, TrainSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileProgram(p, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Blocks.Len() == 0 || b.Blocks.Len() == 0 {
		t.Fatal("empty profiles")
	}
	same := a.Blocks.Len() == b.Blocks.Len()
	if same {
		for i := range a.Blocks.Syms {
			if a.Blocks.Syms[i] != b.Blocks.Syms[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("train and eval inputs produced identical traces")
	}
}

func TestLoadProgramUnknown(t *testing.T) {
	if _, err := LoadProgram("no.such"); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestPruningBoundsAlphabet(t *testing.T) {
	prof := profileNamed(t, "458.sjeng")
	o := BBAffinity()
	o.PruneTopN = 50
	l, rep, err := o.Optimize(prof)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqLen > 50 {
		t.Errorf("SeqLen = %d with PruneTopN=50", rep.SeqLen)
	}
	if rep.Retention >= 1 {
		t.Errorf("Retention = %v, want < 1 with tight pruning", rep.Retention)
	}
	// Layout still covers the whole program (unprofiled blocks appended).
	if err := l.Validate(); err != nil {
		t.Errorf("pruned layout invalid: %v", err)
	}
}

// TestOptimizerByName: the registry layoutd resolves request names
// through. Every advertised name must round-trip to an optimizer whose
// Name() matches, and unknown names must error cleanly (no panic, a
// message naming the request).
func TestOptimizerByName(t *testing.T) {
	for _, name := range OptimizerNames() {
		o, err := OptimizerByName(name)
		if err != nil {
			t.Errorf("OptimizerByName(%q): %v", name, err)
			continue
		}
		if o.Name() != name {
			t.Errorf("OptimizerByName(%q).Name() = %q", name, o.Name())
		}
	}
	if _, err := OptimizerByName("no-such-optimizer"); err == nil {
		t.Error("unknown optimizer accepted")
	} else if !strings.Contains(err.Error(), "no-such-optimizer") {
		t.Errorf("error %q does not name the unknown optimizer", err)
	}
	if _, err := OptimizerByName(""); err == nil {
		t.Error("empty optimizer name accepted")
	}
}

// TestOptimizerNamesUniqueStable: names are unique (the registry is a
// bijection, so content-addressed cache keys cannot collide across
// optimizers) and stable across calls (clients may hardcode them).
// TestLayoutFromSequenceRoundTrip: rebuilding a layout from the cached
// Report.Sequence must reproduce the optimizer's layout exactly — the
// serving layer depends on this to replay co-runs from stored results.
func TestLayoutFromSequenceRoundTrip(t *testing.T) {
	prof := profileNamed(t, "458.sjeng")
	for _, o := range AllWithBaselines() {
		l, rep, err := o.Optimize(prof)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		rebuilt, err := LayoutFromSequence(prof.Prog, o.Name(), rep.Sequence)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", o.Name(), err)
		}
		if !reflect.DeepEqual(l.Addr, rebuilt.Addr) || !reflect.DeepEqual(l.Order(), rebuilt.Order()) {
			t.Errorf("%s: rebuilt layout diverges from original", o.Name())
		}
	}
}

func TestLayoutFromSequenceErrors(t *testing.T) {
	prof := profileNamed(t, "458.sjeng")
	if _, err := LayoutFromSequence(nil, "func-affinity", nil); err == nil {
		t.Error("nil program should be rejected")
	}
	if _, err := LayoutFromSequence(prof.Prog, "no-such-optimizer", nil); err == nil {
		t.Error("unknown optimizer should be rejected")
	}
}

func TestOptimizerNamesUniqueStable(t *testing.T) {
	names := OptimizerNames()
	if len(names) != len(AllWithBaselines()) {
		t.Fatalf("got %d names for %d optimizers", len(names), len(AllWithBaselines()))
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if n == "" {
			t.Error("empty optimizer name")
		}
		if seen[n] {
			t.Errorf("duplicate optimizer name %q", n)
		}
		seen[n] = true
	}
	if !reflect.DeepEqual(names, OptimizerNames()) {
		t.Error("OptimizerNames is not stable across calls")
	}
	// The four paper optimizers stay first, in the paper's order.
	want := []string{"func-affinity", "bb-affinity", "func-trg", "bb-trg"}
	if !reflect.DeepEqual(names[:4], want) {
		t.Errorf("paper optimizers = %v, want %v", names[:4], want)
	}
}

var _ = progen.MainSuiteNames // keep the import for documentation parity
