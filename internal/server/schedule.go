package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/obs"
	"codelayout/internal/parallel"
	"codelayout/internal/schedule"
)

// scheduleStoreKey prefixes schedule documents in the durable store.
const scheduleStoreKey = "s-"

// scheduleRequest is the decoded body of POST /v1/schedule: N cached
// layout digests (repeats allowed — the same workload can occupy several
// slots) plus the core/socket topology to place them on and an optional
// cache geometry.
type scheduleRequest struct {
	Digests  []string          `json:"digests"`
	Topology schedule.Topology `json:"topology"`
	Cache    *cachesim.Config  `json:"cache,omitempty"`
}

// ScheduleDoc is the completed output of one schedule job: the pairwise
// Eq-1 interference matrix over the requested digests and the placement
// minimizing its total cost.
type ScheduleDoc struct {
	// Digest is the content address: SHA-256 over the digest list (in
	// request order), the topology, and the cache geometry.
	Digest   string            `json:"digest"`
	Cache    cachesim.Config   `json:"cache"`
	Topology schedule.Topology `json:"topology"`
	Digests  []string          `json:"digests"`
	// Labels names each digest "prog/optimizer" for table rendering.
	Labels []string `json:"labels"`
	// Matrix[i][j] is the pair cost of co-locating digests i and j: the
	// total Eq-1 predicted co-run misses of that pairing. Symmetric,
	// zero diagonal.
	Matrix [][]float64 `json:"matrix"`
	// Placement is the solver's domain assignment over matrix indices.
	Placement schedule.Placement `json:"placement"`
	// WorstCost is the exhaustive worst-case placement cost when the
	// instance is small enough to enumerate (WorstKnown); the spread
	// between it and Placement.Cost is what interference-aware placement
	// buys.
	WorstCost  float64 `json:"worstCost,omitempty"`
	WorstKnown bool    `json:"worstKnown"`
	// PairsComputed counts pair analyses simulated for this matrix;
	// PairsCached came from the content-addressed pair cache.
	PairsComputed int `json:"pairsComputed"`
	PairsCached   int `json:"pairsCached"`
	// ElapsedMS is the job wall time (0 for cache hits).
	ElapsedMS float64 `json:"elapsedMS"`
}

// scheduleJobRequest carries a validated /v1/schedule job to its worker.
type scheduleJobRequest struct {
	digests  []string
	entries  []*corunEntry // parallel to digests; repeats share pointers
	topo     schedule.Topology
	cfg      cachesim.Config
	key      string
	deadline time.Time
	ctx      context.Context
}

// scheduleDigest derives the content address of a schedule request. The
// digest list is hashed in request order: permutations are different
// documents (matrix indices differ), only identical requests hit.
func scheduleDigest(digests []string, topo schedule.Topology, cfg cachesim.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "layoutd/schedule/v1\ntopo:%dx%d\ncache:%d/%d/%d\n",
		topo.Domains, topo.SlotsPerDomain, cfg.SizeBytes, cfg.Assoc, cfg.LineBytes)
	for _, d := range digests {
		fmt.Fprintf(h, "d:%s\n", d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// handleSchedule is POST /v1/schedule: compute the pairwise interference
// matrix over N cached layouts and a placement minimizing total Eq-1
// predicted misses. Runs as an async job; the matrix reuses pair
// documents across jobs via the content-addressed pair cache.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	traceID := requestTraceID(r)
	logger := s.logger.With("trace_id", traceID)
	rec := obs.NewRecorder(s.cfg.SpanBufferSize)
	rec.SetDropHook(s.metrics.spansDropped.Inc)
	ctx := obs.WithTraceID(obs.WithLogger(obs.WithRecorder(r.Context(), rec), logger), traceID)

	var req scheduleRequest
	if err := readJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Digests) < 2 {
		httpError(w, http.StatusBadRequest, errors.New("need at least 2 layout digests to schedule"))
		return
	}
	if len(req.Digests) > s.cfg.MaxScheduleDigests {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("%d digests exceed the per-request bound %d", len(req.Digests), s.cfg.MaxScheduleDigests))
		return
	}
	cfg, err := corunConfig(req.Cache)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := req.Topology.Validate(len(req.Digests)); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Materialize each distinct digest once; repeated digests share the
	// entry (and its memoized curves).
	entries, status, err := s.resolveEntries(ctx, req.Digests)
	if err != nil {
		httpError(w, status, err)
		return
	}
	s.metrics.scheduleJobs.Inc()

	jr := &scheduleJobRequest{
		digests:  req.Digests,
		entries:  entries,
		topo:     req.Topology,
		cfg:      cfg,
		key:      scheduleDigest(req.Digests, req.Topology, cfg),
		deadline: time.Now().Add(s.cfg.JobTimeout),
	}
	jobCtx, jobCancel := context.WithCancel(context.Background())
	jr.ctx = jobCtx

	j := &Job{
		id:       s.newJobID(),
		kind:     jobKindSchedule,
		status:   StatusQueued,
		digest:   jr.key,
		created:  time.Now(),
		cancel:   jobCancel,
		traceID:  traceID,
		rec:      rec,
		progName: fmt.Sprintf("schedule[%d]", len(req.Digests)),
	}
	j.logger = logger.With("job", j.id)

	if doc, ok := s.schedules.get(ctx, jr.key); ok {
		j.cached = true
		j.completeSchedule(doc)
		s.storeJob(j)
		s.metrics.accepted.Inc()
		s.finish(j)
		writeJSON(w, http.StatusOK, j.view())
		return
	}

	s.storeJob(j)
	accepted := s.pool.TrySubmit(func(poolCtx context.Context) {
		s.runScheduleJob(poolCtx, j, jr)
	})
	if !accepted {
		s.dropJob(j.id)
		jobCancel()
		s.metrics.rejected.Inc()
		logger.Warn("schedule job rejected: queue full", "job", j.id)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, errors.New("job queue full"))
		return
	}
	s.metrics.accepted.Inc()
	j.logger.Info("schedule job accepted",
		"digests", len(req.Digests), "topology", req.Topology, "key", jr.key)
	writeJSON(w, http.StatusAccepted, j.view())
}

// runScheduleJob is the pool task behind POST /v1/schedule: assemble the
// interference matrix (one pair document per distinct digest pair,
// memoized via the pair cache), then solve the placement.
func (s *Server) runScheduleJob(poolCtx context.Context, j *Job, req *scheduleJobRequest) {
	ctx, cleanup, ok := s.beginJob(poolCtx, j, req.deadline, req.ctx)
	if !ok {
		return
	}
	defer cleanup()
	start := time.Now()
	doc, err := s.computeSchedule(ctx, req)
	if err != nil {
		s.failOrCancel(j, err)
		return
	}
	doc.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.schedules.put(ctx, req.key, doc)
	j.completeSchedule(doc)
	s.metrics.completed.Inc()
	s.finish(j)
}

func (s *Server) computeSchedule(ctx context.Context, req *scheduleJobRequest) (*ScheduleDoc, error) {
	n := len(req.entries)
	msp := obs.StartSpan(ctx, "schedule.matrix")

	// Collect the distinct pair keys: repeated digests mean one document
	// can fill several matrix cells, so the compute list is deduplicated
	// before fanning out. Self-cells (i == j) are the zero diagonal, but
	// the same *digest* at two indices is a real self-pairing.
	type cell struct{ i, j int }
	firstCell := make(map[string]cell)
	keyAt := make([][]string, n)
	for i := range keyAt {
		keyAt[i] = make([]string, n)
	}
	for i := 0; i < n; i++ {
		for jx := i + 1; jx < n; jx++ {
			k := corunDigest(req.entries[i].res.Digest, req.entries[jx].res.Digest, req.cfg)
			keyAt[i][jx] = k
			keyAt[jx][i] = k
			if _, ok := firstCell[k]; !ok {
				firstCell[k] = cell{i, jx}
			}
		}
	}
	keys := make([]string, 0, len(firstCell))
	for k := range firstCell {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var mu sync.Mutex
	docs := make(map[string]*CorunDoc, len(keys))
	var computed, cached int
	// Pair analyses fan out across the job's analysis budget; each
	// analysis runs its simulations serially so the job's total
	// concurrency stays bounded by OptWorkers.
	err := parallel.ForEachCtx(ctx, s.cfg.OptWorkers, len(keys), func(ctx context.Context, idx int) error {
		k := keys[idx]
		if doc, ok := s.pairs.get(ctx, k); ok {
			s.metrics.pairHits.Inc()
			mu.Lock()
			docs[k] = doc
			cached++
			mu.Unlock()
			return nil
		}
		s.metrics.pairMisses.Inc()
		c := firstCell[k]
		doc, err := s.pairAnalysis(ctx, req.cfg, req.entries[c.i], req.entries[c.j], 1)
		if err != nil {
			return err
		}
		s.metrics.schedulePairs.Inc()
		s.pairs.put(ctx, doc.Digest, doc)
		mu.Lock()
		docs[k] = doc
		computed++
		mu.Unlock()
		return nil
	})
	if err != nil {
		msp.End()
		return nil, err
	}
	matrix := make([][]float64, n)
	for i := range matrix {
		matrix[i] = make([]float64, n)
		for jx := range matrix[i] {
			if jx != i {
				matrix[i][jx] = docs[keyAt[i][jx]].PairCost
			}
		}
	}
	msp.SetAttr("pairs", int64(len(keys)))
	msp.SetAttr("computed", int64(computed))
	msp.End()

	ssp := obs.StartSpan(ctx, "schedule.solve")
	placement, err := schedule.Solve(ctx, matrix, req.topo)
	if err != nil {
		ssp.End()
		return nil, err
	}
	worst, worstKnown := schedule.Worst(matrix, req.topo)
	ssp.SetAttr("exact", boolAttr(placement.Exact))
	ssp.End()

	labels := make([]string, n)
	for i, e := range req.entries {
		labels[i] = e.res.Prog + "/" + e.res.Optimizer
	}
	doc := &ScheduleDoc{
		Digest:        req.key,
		Cache:         req.cfg,
		Topology:      req.topo,
		Digests:       req.digests,
		Labels:        labels,
		Matrix:        matrix,
		Placement:     placement,
		WorstKnown:    worstKnown,
		PairsComputed: computed,
		PairsCached:   cached,
	}
	if worstKnown {
		doc.WorstCost = worst.Cost
	}
	return doc, nil
}

func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
