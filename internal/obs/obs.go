// Package obs is layoutd's dependency-free observability subsystem:
// structured logging, in-process tracing, and a metrics registry, all
// carried through the pipeline on context.Context.
//
// The three parts:
//
//   - Structured logging: NewLogger builds a slog JSON logger; WithLogger
//     / Logger carry a request- or job-scoped logger (pre-bound with its
//     trace_id) through the pipeline, so every log line a job emits —
//     from HTTP accept through the worker pool into the analysis kernels
//     and the durable store — carries the same trace_id.
//
//   - In-process tracing: a Recorder is a bounded per-job span buffer;
//     StartSpan(ctx, "affinity.hierarchy") records a named span with
//     start offset, duration, and a few integer attributes into the
//     recorder riding ctx. The hot path (StartSpan + End with a
//     non-full recorder) performs zero heap allocations, so spans are
//     safe inside the zero-allocation analysis kernels. Spans beyond
//     the buffer bound are dropped and counted, never grown.
//
//   - Metrics: Registry holds counters, gauges, and histograms —
//     optionally with one label dimension — and renders a snapshot in
//     the Prometheus text exposition format. Counter.Inc and
//     Histogram.Observe are lock-free atomics with zero allocations.
//
// The package deliberately depends only on the standard library, and on
// nothing else in this repository, so every layer (server, store,
// parallel pool, analysis kernels) can import it without cycles.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"log/slog"
	"sync/atomic"
)

// ctxKey is the private context key space.
type ctxKey int

const (
	loggerKey ctxKey = iota
	recorderKey
	traceIDKey
)

// NewTraceID returns a fresh 32-hex-character trace ID — the W3C trace
// context width, so layoutd trace IDs drop straight into a traceparent
// header. Legacy 16-hex IDs (pre-widening nodes, old clients) are still
// accepted everywhere an ID is read; see ValidTraceID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively impossible on supported
		// platforms; fall back to a process-local sequence rather than
		// panicking in a request path.
		n := fallbackID.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * (i % 8)))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-character span ID for outbound
// traceparent headers.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := fallbackID.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Uint64

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceID returns the context's trace ID, or "" when absent.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// NewLogger builds a JSON structured logger writing to w at the given
// level. It is what cmd/layoutd installs; tests point w at a buffer to
// assert on log lines.
func NewLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// nopHandler discards every record; NopLogger is the zero-cost default
// when no logger is configured.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// NopLogger discards everything. Logger(ctx) returns it when the
// context carries no logger, so call sites never nil-check.
var NopLogger = slog.New(nopHandler{})

// WithLogger returns a context carrying l; pre-bind per-job attributes
// (trace_id, job id) with l.With before attaching.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the context's logger, or NopLogger when absent.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return NopLogger
}

// WithRecorder returns a context carrying the span recorder; StartSpan
// records into it.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return context.WithValue(ctx, recorderKey, r)
}

// RecorderFrom returns the context's span recorder, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}
