package footprint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowFootprint(t *testing.T) {
	// Paper example: in trimmed trace B1 B3 B2 B3 B4, fp<B1,B2> = 3.
	syms := []int32{1, 3, 2, 3, 4}
	if got := WindowFootprint(syms, 0, 2, nil); got != 3 {
		t.Errorf("fp<B1,B2> = %d, want 3", got)
	}
	// Order of endpoints must not matter.
	if got := WindowFootprint(syms, 2, 0, nil); got != 3 {
		t.Errorf("fp with swapped endpoints = %d, want 3", got)
	}
	// Full trace.
	if got := WindowFootprint(syms, 0, 4, nil); got != 4 {
		t.Errorf("fp full = %d, want 4", got)
	}
	// Weighted footprint sums block sizes.
	weights := []int32{0, 10, 20, 30, 40}
	if got := WindowFootprint(syms, 0, 2, weights); got != 60 {
		t.Errorf("weighted fp = %d, want 60", got)
	}
}

func curvesClose(a, b *Curve) bool {
	if a.N != b.N || math.Abs(a.Total-b.Total) > 1e-9 {
		return false
	}
	for w := 0; w <= a.N; w++ {
		if math.Abs(a.At(w)-b.At(w)) > 1e-6 {
			return false
		}
	}
	return true
}

func TestCurveMatchesNaiveSmall(t *testing.T) {
	cases := [][]int32{
		{0, 1, 0},
		{0, 0, 0},
		{0, 1},
		{0, 1, 2, 0, 1, 2, 2},
		{5},
		{},
	}
	for _, syms := range cases {
		got := NewCurve(syms, nil)
		want := NewCurveNaive(syms, nil)
		if !curvesClose(got, want) {
			t.Errorf("curve mismatch for %v:\n got %v\nwant %v", syms, got.FP, want.FP)
		}
	}
}

func TestCurveMatchesNaiveQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		syms := make([]int32, len(raw))
		for i, r := range raw {
			syms[i] = int32(r % 10)
		}
		return curvesClose(NewCurve(syms, nil), NewCurveNaive(syms, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCurveMatchesNaiveWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	weights := make([]int32, 16)
	for i := range weights {
		weights[i] = int32(8 + rng.Intn(120))
	}
	for trial := 0; trial < 20; trial++ {
		syms := make([]int32, 60)
		for i := range syms {
			syms[i] = int32(rng.Intn(16))
		}
		if !curvesClose(NewCurve(syms, weights), NewCurveNaive(syms, weights)) {
			t.Fatalf("weighted curve mismatch on trial %d", trial)
		}
	}
}

func TestCurveMonotoneAndConcaveProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	syms := make([]int32, 4000)
	for i := range syms {
		syms[i] = int32(rng.Intn(64))
	}
	c := NewCurve(syms, nil)
	for w := 1; w <= c.N; w++ {
		if c.At(w) < c.At(w-1)-1e-9 {
			t.Fatalf("footprint not monotone at w=%d", w)
		}
	}
	if c.At(1) != 1 {
		t.Errorf("FP(1) = %v, want 1 (every window of 1 has footprint 1)", c.At(1))
	}
	if math.Abs(c.At(c.N)-c.Total) > 1e-9 {
		t.Errorf("FP(n) = %v, want total %v", c.At(c.N), c.Total)
	}
	// At clamps out-of-range windows.
	if c.At(-5) != 0 || c.At(c.N+100) != c.Total {
		t.Error("At does not clamp")
	}
}

// cyclicTrace returns a trace looping over k symbols r times.
func cyclicTrace(k, r int) []int32 {
	syms := make([]int32, 0, k*r)
	for i := 0; i < r; i++ {
		for s := 0; s < k; s++ {
			syms = append(syms, int32(s))
		}
	}
	return syms
}

func TestMissRatioAtCyclic(t *testing.T) {
	// A cyclic trace over 32 symbols: LRU thrashes below 32, holds at 32.
	c := NewCurve(cyclicTrace(32, 100), nil)
	low := c.MissRatioAt(8)
	high := c.MissRatioAt(40)
	if low < 0.5 {
		t.Errorf("miss ratio with capacity 8 = %v, want close to 1 (thrash)", low)
	}
	if high != 0 {
		t.Errorf("miss ratio with capacity 40 = %v, want 0", high)
	}
	// A cache of exactly the working set holds a cyclic trace under LRU.
	if fit := c.MissRatioAt(32); fit != 0 {
		t.Errorf("miss ratio with capacity 32 = %v, want 0 (exact fit)", fit)
	}
	if got := c.MissRatioAt(0); got != 1 {
		t.Errorf("miss ratio at capacity 0 = %v, want 1", got)
	}
}

func TestCorunMissRatioContention(t *testing.T) {
	// Self loops over 20 symbols, peer over 20 symbols; cache of 32
	// holds either alone but not both.
	self := NewCurve(cyclicTrace(20, 50), nil)
	peer := NewCurve(cyclicTrace(20, 50), nil)
	solo := self.MissRatioAt(32)
	corun := CorunMissRatio(self, peer, 32)
	if solo != 0 {
		t.Errorf("solo miss = %v, want 0 (working set fits)", solo)
	}
	if corun <= solo {
		t.Errorf("co-run miss %v not above solo %v: no contention modeled", corun, solo)
	}
	// A huge shared cache removes the contention.
	if got := CorunMissRatio(self, peer, 1000); got != 0 {
		t.Errorf("co-run miss with big cache = %v, want 0", got)
	}
	if got := CorunMissRatio(self, peer, 0); got != 1 {
		t.Errorf("co-run miss with no cache = %v, want 1", got)
	}
}

func TestAnalyzeGains(t *testing.T) {
	// Base program loops over 30 symbols; "optimized" loops over 15
	// (layout packing halved its footprint). Peer loops over 20. With a
	// shared capacity of 35, peer+base reuses overflow (20+20 > 35) but
	// peer+opt fit exactly (20+15).
	base := NewCurve(cyclicTrace(30, 60), nil)
	opt := NewCurve(cyclicTrace(15, 120), nil)
	peer := NewCurve(cyclicTrace(20, 90), nil)
	rep := Analyze(base, opt, peer, 35)

	if rep.SelfCorunOpt >= rep.SelfCorunBase {
		t.Errorf("defensiveness: opt co-run miss %v !< base %v", rep.SelfCorunOpt, rep.SelfCorunBase)
	}
	if rep.PeerCorunOpt >= rep.PeerCorunBase {
		t.Errorf("politeness: peer miss with opt %v !< with base %v", rep.PeerCorunOpt, rep.PeerCorunBase)
	}
	if g := rep.DefensivenessGain(); g <= 0 || g > 1 {
		t.Errorf("DefensivenessGain = %v, want in (0,1]", g)
	}
	if g := rep.PolitenessGain(); g <= 0 || g > 1 {
		t.Errorf("PolitenessGain = %v, want in (0,1]", g)
	}
}

func TestRelGainZeroBase(t *testing.T) {
	rep := SharingReport{SoloBase: 0, SoloOpt: 0}
	if rep.LocalityGain() != 0 {
		t.Error("gain with zero base should be 0")
	}
}

func TestEmptyCurve(t *testing.T) {
	c := NewCurve(nil, nil)
	if c.MissRatioAt(10) != 1 {
		t.Error("empty trace miss ratio should degenerate to 1")
	}
	if CorunMissRatio(c, c, 10) != 0 {
		t.Error("empty self co-run miss should be 0")
	}
}

func BenchmarkNewCurve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int32, 1<<17)
	for i := range syms {
		syms[i] = int32(rng.Intn(2048))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCurve(syms, nil)
	}
}
