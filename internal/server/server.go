// Package server implements layoutd, the layout-optimization service:
// an HTTP layer over the repository's trace format and optimizer suite.
// Clients stream a CLTR binary trace to POST /v1/jobs together with a
// suite-program name and an optimizer name; the server decodes the
// upload incrementally (trace.Decoder), queues an optimization job on a
// bounded worker pool (parallel.Pool) with per-job deadline and
// backpressure (429 when the queue is full), and stores completed
// results in a content-addressed cache keyed by the SHA-256 of the
// trace bytes plus the optimizer and its parameters, so resubmitting
// the same profile never recomputes.
//
// With Config.StreamWindow > 0, feed-capable optimizers analyze the
// trace while it uploads (see stream.go): decoded chunks flow through a
// bounded ring into the analysis kernels, so memory stays O(window) no
// matter how large the trace, and the result is byte-identical to the
// buffered pipeline's. Config.Uploads additionally enables resumable
// chunked uploads (see uploads.go) for traces too large or too flaky
// to submit in one request. GET /metrics exposes counters and
// per-optimizer latency histograms with no external dependencies.
//
// Observability (internal/obs) is threaded through the whole job path:
// every submission gets a trace_id carried on context.Context into the
// pool workers, the optimizer pipeline, and the store; pipeline phases
// are recorded as spans in a bounded per-job buffer and folded into
// per-phase latency histograms; and all metrics live on one
// obs.Registry rendered at /metrics.
//
// Endpoints:
//
//	POST /v1/jobs?prog=<suite program>&opt=<optimizer>[&prune=<topN>]
//	     body: raw CLTR trace, or multipart/form-data with a "trace" file
//	GET  /v1/jobs/{id}        job status and, when done, the result
//	GET  /v1/jobs/{id}/trace  the job's span timeline
//	DELETE /v1/jobs/{id}      cancel a still-queued job
//	POST /v1/uploads          create a resumable upload session
//	GET  /v1/uploads/{id}     session's durable offset (resume point)
//	PATCH /v1/uploads/{id}    append bytes at Upload-Offset
//	DELETE /v1/uploads/{id}   discard a session
//	POST /v1/uploads/{id}/finalize?prog=&opt=[&prune=]  submit the spooled trace
//	GET  /v1/layouts/{digest} cached result by content address
//	GET  /v1/optimizers       the optimizer registry
//	GET  /v1/debug/jobs       ring of recent job summaries
//	GET  /v1/store            admin: list blobs held by the durable tier
//	GET  /v1/store/{key}      admin: raw blob bytes (peer replication reads)
//	DELETE /v1/store/{key}    admin: evict a blob from both tiers
//	PUT  /v1/replicate/{key}  peer replication push, digest-authenticated
//	GET  /healthz             liveness (JSON: status, node_id, build)
//	GET  /metrics             Prometheus-format text
//
// With Config.Cluster set, the node is one member of a static layoutd
// cluster (internal/cluster): ownership of every content address is
// decided by rendezvous hashing, non-owners transparently forward
// submissions and reads to the owner, and completed results replicate
// write-behind to the key's replica set, so any node serves any digest
// and a killed owner leaves its results fetchable from replicas.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"mime/multipart"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/cluster"
	"codelayout/internal/core"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/obs"
	"codelayout/internal/parallel"
	"codelayout/internal/stats"
	"codelayout/internal/store"
	"codelayout/internal/trace"
)

// Config sizes the service.
type Config struct {
	// JobWorkers bounds concurrent optimizations; <= 0 means all cores.
	JobWorkers int
	// QueueDepth bounds jobs accepted but not yet running; submissions
	// beyond it get 429. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// JobTimeout bounds a job's life from acceptance (queue wait
	// included) to completion; 0 means DefaultJobTimeout.
	JobTimeout time.Duration
	// OptWorkers is the analysis concurrency inside one job (the
	// core.Optimizer Workers knob); 0 means all cores. Serving many
	// concurrent jobs usually wants 1 here and parallelism across jobs.
	OptWorkers int
	// MaxTraceBytes caps an upload; 0 means DefaultMaxTraceBytes.
	MaxTraceBytes int64
	// JobTTL bounds how long a completed or failed job's status stays
	// queryable at /v1/jobs/{id}; 0 means DefaultJobTTL. Results outlive
	// their job entry in the content-addressed cache (/v1/layouts).
	JobTTL time.Duration
	// MaxJobs bounds the tracked-job map; when exceeded, the oldest
	// terminal jobs are evicted first. 0 means DefaultMaxJobs. Queued and
	// running jobs are never evicted.
	MaxJobs int
	// Store is the optional durable result tier (internal/store). The
	// server takes ownership: Shutdown drains its write-behind queue and
	// closes it. Nil means the cache is memory-only.
	Store *store.Store
	// Logger receives structured request/job logs; nil means silent
	// (obs.NopLogger). Per-job loggers derived from it carry trace_id
	// and job id on every line.
	Logger *slog.Logger
	// SpanBufferSize bounds each job's span recorder; spans beyond it
	// are dropped and counted in layoutd_spans_dropped_total. 0 means
	// obs.DefaultSpanCapacity.
	SpanBufferSize int
	// DebugJobRing bounds the recent-job summaries at /v1/debug/jobs;
	// 0 means DefaultDebugJobRing.
	DebugJobRing int
	// TraceCacheEntries bounds the in-memory tier of retained decoded
	// traces (the inputs /v1/corun and /v1/schedule replay); 0 means
	// DefaultTraceCacheEntries. With a Store, evicted traces remain
	// reachable from disk.
	TraceCacheEntries int
	// MaxScheduleDigests bounds the layouts one /v1/schedule request may
	// place; 0 means DefaultMaxScheduleDigests.
	MaxScheduleDigests int
	// StreamWindow bounds the decoded-chunk memory of one streamed
	// submission, in bytes. > 0 enables feed-mode ingest: uploads whose
	// optimizer supports it are analyzed while they arrive, with at most
	// this much decoded trace in flight (the TCP stream stalls when the
	// analysis falls behind). 0 disables streaming: every upload is fully
	// decoded before analysis, as before.
	StreamWindow int64
	// Uploads is the optional resumable-upload session manager backing
	// POST /v1/uploads and friends; the chunked path for traces too large
	// or too flaky to submit in one request. Nil disables the endpoints.
	Uploads *store.Uploads
	// Cluster makes this node a member of a static layoutd cluster. The
	// server takes ownership: it starts the cluster's background work and
	// closes it on Shutdown. Nil means single-node.
	Cluster *cluster.Cluster
	// NodeID names this node in /healthz; empty means the cluster self ID
	// (or omitted when single-node).
	NodeID string
	// EventRing bounds the structured event log at /v1/debug/events;
	// 0 means DefaultEventRing.
	EventRing int
	// RuntimeSampleInterval is the runtime-telemetry sampler's tick
	// period; 0 means obs.DefaultRuntimeSampleInterval. The sampler is
	// always on: it feeds the layoutd_runtime_* gauges and the bounded
	// ring at /v1/debug/runtime.
	RuntimeSampleInterval time.Duration
	// RuntimeRing bounds the retained runtime samples; 0 means
	// obs.DefaultRuntimeRing.
	RuntimeRing int
}

// Defaults for zero Config fields.
const (
	DefaultJobTimeout         = 5 * time.Minute
	DefaultMaxTraceBytes      = 64 << 20
	DefaultQueueDepth         = 64
	DefaultJobTTL             = 15 * time.Minute
	DefaultMaxJobs            = 4096
	DefaultTraceCacheEntries  = 32
	DefaultMaxScheduleDigests = 32
	// DefaultStreamWindow is cmd/layoutd's -stream-window default. The
	// Config zero value keeps streaming off (the embedding caller opts
	// in); the daemon streams by default.
	DefaultStreamWindow = 8 << 20
)

// Server is the layoutd service state. Create with New, serve
// Handler(), stop with Shutdown.
type Server struct {
	cfg       Config
	pool      *parallel.Pool
	cache     *resultCache
	traces    *traceCache
	pairs     *docCache[CorunDoc]
	schedules *docCache[ScheduleDoc]
	disk      *store.Store // nil: memory-only
	metrics   *serverMetrics
	logger    *slog.Logger
	ring      *debugRing
	events    *eventRing
	runtime   *obs.RuntimeSampler
	fwdlog    *forwardLog
	mux       *http.ServeMux

	// cluster is the peer group this node belongs to; nil single-node.
	// peerClient carries forwarded requests to peers.
	cluster    *cluster.Cluster
	peerClient *http.Client

	// uploads holds the resumable-upload sessions (nil: endpoints off).
	uploads *store.Uploads
	// streamBytes counts decoded chunk bytes in flight across streaming
	// submissions (the layoutd_stream_buffered_bytes gauge); streamPeak
	// is its high-water mark.
	streamBytes atomic.Int64
	streamPeak  atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*Job
	progs  map[string]*progEntry
	nextID atomic.Int64

	// arenas recycles the analysis kernels' buffers across jobs: each
	// running job borrows one core.Arena, so a steady request stream
	// reuses the same hot-path allocations instead of re-growing them
	// per job.
	arenas sync.Pool

	// optimize runs one validated job request; tests substitute it to
	// control timing and failure modes.
	optimize func(ctx context.Context, req *jobRequest) (*Result, error)

	// pairAnalysis runs one co-run pair analysis; tests substitute it to
	// control timing and failure modes (e.g. blocking a schedule job
	// mid-matrix to exercise cancellation).
	pairAnalysis func(ctx context.Context, cfg cachesim.Config, a, b *corunEntry, workers int) (*CorunDoc, error)

	// now returns the current time; tests substitute it to drive the
	// retention clock.
	now func() time.Time
}

// progEntry lazily generates one suite program, shared by every job
// that names it.
type progEntry struct {
	once sync.Once
	p    *ir.Program
	err  error
}

// New creates a server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	if cfg.MaxTraceBytes <= 0 {
		cfg.MaxTraceBytes = DefaultMaxTraceBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = DefaultJobTTL
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger
	}
	if cfg.MaxScheduleDigests <= 0 {
		cfg.MaxScheduleDigests = DefaultMaxScheduleDigests
	}
	// The durable tier the caches see: the raw store when single-node,
	// or the cluster wrapper — which adds peer fetch-through on local
	// miss and write-behind replication on every put. A nil *store.Store
	// must never be wrapped into a non-nil plain interface, so the
	// single-node branch assigns only when the store exists.
	var blobs blobStore
	var cb *clusterBlobs
	if cfg.Cluster != nil {
		cb = &clusterBlobs{disk: cfg.Store, cl: cfg.Cluster}
		blobs = cb
	} else if cfg.Store != nil {
		blobs = cfg.Store
	}
	s := &Server{
		cfg:       cfg,
		pool:      parallel.NewPool(cfg.JobWorkers, cfg.QueueDepth),
		cache:     newResultCache(blobs),
		traces:    newTraceCache(cfg.TraceCacheEntries, blobs),
		pairs:     newDocCache[CorunDoc](blobs, pairStoreKey),
		schedules: newDocCache[ScheduleDoc](blobs, scheduleStoreKey),
		disk:      cfg.Store,
		uploads:   cfg.Uploads,
		cluster:   cfg.Cluster,
		logger:    cfg.Logger,
		ring:      newDebugRing(cfg.DebugJobRing),
		events:    newEventRing(cfg.EventRing),
		runtime:   obs.NewRuntimeSampler(cfg.RuntimeSampleInterval, cfg.RuntimeRing),
		fwdlog:    newForwardLog(0),
		jobs:      make(map[string]*Job),
		progs:     make(map[string]*progEntry),
	}
	if cb != nil {
		cb.srv = s
	}
	s.metrics = newServerMetrics(s)
	s.events.counter = s.metrics.events
	if s.disk != nil {
		// Durability transitions (breaker trips/recoveries, quarantines)
		// land in the event ring alongside the cluster's.
		s.disk.SetEventHook(func(kind, detail string) {
			s.events.record(kind, s.nodeID(), detail)
		})
	}
	s.runtime.Start()
	if cl := s.cluster; cl != nil {
		s.peerClient = &http.Client{Timeout: 30 * time.Second}
		// Per-peer health gauges: 2 = up, 1 = degraded, 0 = down.
		// Initialize every peer optimistically up (matching the cluster's
		// starting view) so the series exist before the first poll.
		for _, p := range cl.Peers() {
			if p.ID != cl.SelfID() {
				s.metrics.peerHealth.With(p.ID).Set(2)
			}
		}
		cl.SetStateHook(func(id string, st cluster.State) {
			s.metrics.peerHealth.With(id).Set(int64(2 - st))
			kind := eventPeerUp
			switch st {
			case cluster.StateDegraded:
				kind = eventPeerDegraded
			case cluster.StateDown:
				kind = eventPeerDown
			}
			s.events.record(kind, id, "")
		})
		cl.SetReplicateHook(func(peer, key string, lag, dur time.Duration, err error) {
			s.metrics.replLag.Observe(lag.Seconds())
			s.metrics.phase.With("store.replicate").Observe(dur.Seconds())
		})
		// Initialize the per-peer drop series at 0 so dashboards and the
		// chaos smoke can read them before the first drop.
		for _, p := range cl.Peers() {
			if p.ID != cl.SelfID() {
				s.metrics.replicationDropped.With(p.ID).Add(0)
			}
		}
		cl.SetDropHook(func(peer, key string) {
			s.metrics.replicationDropped.With(peer).Inc()
			s.events.record(eventReplicationDrop, peer, key)
			s.logger.Warn("replication enqueue dropped; anti-entropy will repair",
				"key", key, "peer", peer)
		})
		cl.SetAntiEntropyHook(func(sw cluster.AntiEntropySweep) {
			s.metrics.phase.With("antientropy.sweep").Observe(sw.Duration.Seconds())
			if sw.Repaired > 0 {
				s.events.record(eventSweepRepair, s.nodeID(),
					fmt.Sprintf("repaired %d keys (%d bytes) from %d peers", sw.Repaired, sw.Bytes, sw.Peers))
				s.logger.Info("anti-entropy sweep repaired keys",
					"repaired", sw.Repaired, "bytes", sw.Bytes,
					"peers", sw.Peers, "truncated", sw.Truncated)
			}
		})
		if s.disk != nil {
			disk := s.disk
			cl.SetAntiEntropySource(
				func() []string {
					if disk.State() != store.StateOK {
						// Degraded: what memory holds is not durable here,
						// so this node repairs nobody until its disk heals.
						return nil
					}
					ents := disk.Entries()
					keys := make([]string, len(ents))
					for i, e := range ents {
						keys[i] = e.Key
					}
					return keys
				},
				func(key string) ([]byte, bool) { return disk.Get(key) },
			)
		}
		cl.Start()
	}
	s.pool.SetQueueWaitHook(func(wait time.Duration) {
		s.metrics.queueWait.Observe(wait.Seconds())
	})
	s.optimize = s.runOptimize
	s.pairAnalysis = s.computePair
	s.now = time.Now
	// The forward* wrappers are identity when Cluster is nil; clustered,
	// they route each request to the owner of its content address (or the
	// node named by a job ID). The admin store endpoints and /v1/replicate
	// never forward: each node answers for its own disk.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.forwardSubmit(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.forwardJobID(s.handleJob))
	// The trace route is NOT wrapped in forwardJobID: cross-node trace
	// assembly (fwdtrace.go) fetches the owner's timeline itself and
	// merges the local forward spans into one document.
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.forwardJobID(s.handleCancel))
	mux.HandleFunc("GET /v1/layouts/{digest}", s.forwardDigest(s.handleLayout))
	mux.HandleFunc("POST /v1/corun", s.forwardJSON(corunRouteKey, s.handleCorun))
	mux.HandleFunc("GET /v1/corun/{digest}", s.forwardDigest(s.handleCorunDoc))
	mux.HandleFunc("POST /v1/schedule", s.forwardJSON(scheduleRouteKey, s.handleSchedule))
	// Resumable uploads are deliberately not forwarded: a session's
	// spool lives on the node that created it, so the whole PATCH
	// sequence and the finalize must land there. The finalized job's
	// result is content-addressed and replicates normally.
	if s.uploads != nil {
		mux.HandleFunc("POST /v1/uploads", s.handleUploadCreate)
		mux.HandleFunc("GET /v1/uploads/{id}", s.handleUploadStatus)
		mux.HandleFunc("PATCH /v1/uploads/{id}", s.handleUploadPatch)
		mux.HandleFunc("DELETE /v1/uploads/{id}", s.handleUploadDelete)
		mux.HandleFunc("POST /v1/uploads/{id}/finalize", s.handleUploadFinalize)
	}
	mux.HandleFunc("GET /v1/optimizers", s.handleOptimizers)
	mux.HandleFunc("GET /v1/debug/jobs", s.handleDebugJobs)
	mux.HandleFunc("GET /v1/debug/events", s.handleDebugEvents)
	mux.HandleFunc("GET /v1/debug/runtime", s.handleDebugRuntime)
	mux.HandleFunc("GET /v1/cluster/metrics", s.handleClusterMetrics)
	mux.HandleFunc("GET /v1/store", s.handleStoreList)
	mux.HandleFunc("GET /v1/store/{key}", s.handleStoreGet)
	mux.HandleFunc("DELETE /v1/store/{key}", s.handleStoreDelete)
	mux.HandleFunc("PUT /v1/replicate/{key}", s.handleReplicate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops accepting jobs, drains queued and in-flight work
// bounded by ctx (the -drain-timeout flag in cmd/layoutd), then drains
// and closes the durable store so completed results hit the disk.
// Submissions arriving after Shutdown get 429. A non-nil error means
// the drain abandoned wedged work and the process should exit nonzero.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.pool.Shutdown(ctx)
	s.runtime.Stop()
	if s.cluster != nil {
		// Stop health polling and drain the replication worker before the
		// disk closes underneath it.
		s.cluster.Close()
	}
	if s.disk != nil {
		s.disk.Close()
	}
	return err
}

// CacheLen reports the number of cached layouts (for tests and logs).
func (s *Server) CacheLen() int { return s.cache.len() }

// StoreState reports the durable tier's breaker state; ok-and-false
// when the server runs memory-only.
func (s *Server) StoreState() (store.State, bool) {
	if s.disk == nil {
		return store.StateOK, false
	}
	return s.disk.State(), true
}

// ---- submission ----

// submission bundles one job submission's validated parameters and
// observability handles, shared by the direct POST /v1/jobs path and
// the resumable-upload finalize path.
type submission struct {
	traceID string
	rec     *obs.Recorder
	logger  *slog.Logger

	prog      *ir.Program
	progName  string
	opt       core.Optimizer
	optName   string
	pruneTopN int
}

// requestTraceID adopts the caller's trace ID when the request carries
// a valid W3C traceparent header (standard 32-hex or legacy 16-hex
// trace ID), else mints a fresh one — so a job submitted through a
// non-owner keeps one trace ID end to end across the forward hop.
func requestTraceID(r *http.Request) string {
	if tp, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		return tp.TraceID
	}
	return obs.NewTraceID()
}

// newSubmissionCtx mints the trace ID, logger, and bounded span
// recorder every submission carries from its first byte, so even the
// decode of a rejected upload is attributed.
func (s *Server) newSubmissionCtx(r *http.Request) (context.Context, *submission) {
	traceID := requestTraceID(r)
	logger := s.logger.With("trace_id", traceID)
	rec := obs.NewRecorder(s.cfg.SpanBufferSize)
	rec.SetDropHook(s.metrics.spansDropped.Inc)
	ctx := obs.WithTraceID(obs.WithLogger(obs.WithRecorder(r.Context(), rec), logger), traceID)
	return ctx, &submission{traceID: traceID, rec: rec, logger: logger}
}

// resolve validates the request parameters into the submission.
func (sub *submission) resolve(s *Server, progName, optName, pruneStr string) error {
	if progName == "" || optName == "" {
		return errors.New("missing required parameter: prog and opt")
	}
	if pruneStr != "" {
		n, err := strconv.Atoi(pruneStr)
		if err != nil || n < 0 {
			return fmt.Errorf("invalid prune %q", pruneStr)
		}
		sub.pruneTopN = n
	}
	opt, err := core.OptimizerByName(optName)
	if err != nil {
		return err
	}
	prog, err := s.program(progName)
	if err != nil {
		return err
	}
	sub.prog, sub.progName = prog, progName
	sub.opt, sub.optName = opt, optName
	return nil
}

// canStream reports whether this submission takes the feed-mode path:
// streaming enabled and the optimizer — at this request's prune bound —
// able to analyze the trace while it uploads.
func (s *Server) canStream(sub *submission) bool {
	if s.cfg.StreamWindow <= 0 {
		return false
	}
	opt := sub.opt
	opt.PruneTopN = sub.pruneTopN
	return opt.FeedSupported(sub.prog)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	ctx, sub := s.newSubmissionCtx(r)

	progName := r.URL.Query().Get("prog")
	optName := r.URL.Query().Get("opt")
	pruneStr := r.URL.Query().Get("prune")

	body, cleanup, err := s.traceBody(w, r, &progName, &optName, &pruneStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()

	if err := sub.resolve(s, progName, optName, pruneStr); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	if s.canStream(sub) {
		s.streamSubmit(ctx, w, body, sub)
		return
	}

	tr, hr, err := decodeUpload(ctx, body)
	if err != nil {
		sub.logger.Warn("trace decode failed", "error", err)
		httpError(w, badBodyStatus(err), err)
		return
	}
	s.finishBufferedSubmit(ctx, w, sub, tr, hr.Sum(), hr.BytesRead())
}

// finishBufferedSubmit is the back half of a fully-decoded submission:
// validate the trace against the program, retain it, and queue the job
// (or answer instantly from the content-addressed cache). Shared by the
// buffered POST /v1/jobs path and the non-streaming upload finalize.
func (s *Server) finishBufferedSubmit(ctx context.Context, w http.ResponseWriter, sub *submission, tr *trace.Trace, traceDigest string, traceBytes int64) {
	if tr.Len() == 0 {
		httpError(w, http.StatusBadRequest, errors.New("trace is empty"))
		return
	}
	if max := tr.MaxSym(); int(max) >= sub.prog.NumBlocks() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("trace symbol %d out of range for %s (%d blocks); is this a basic-block trace of the named program?",
				max, sub.progName, sub.prog.NumBlocks()))
		return
	}

	// Retain the decoded trace so /v1/corun and /v1/schedule can replay
	// this profile later by digest, without a re-upload.
	s.traces.put(ctx, traceDigest, tr)

	req := &jobRequest{
		prog:        sub.prog,
		progName:    sub.progName,
		opt:         sub.opt,
		pruneTopN:   sub.pruneTopN,
		trace:       tr,
		traceDigest: traceDigest,
		deadline:    time.Now().Add(s.cfg.JobTimeout),
	}
	req.digest = resultDigest(req.traceDigest, sub.progName, sub.optName, sub.pruneTopN)
	jobCtx, jobCancel := context.WithCancel(context.Background())
	req.ctx = jobCtx

	j := &Job{
		id:       s.newJobID(),
		status:   StatusQueued,
		digest:   req.digest,
		created:  time.Now(),
		cancel:   jobCancel,
		traceID:  sub.traceID,
		rec:      sub.rec,
		progName: sub.progName,
		optName:  sub.optName,
	}
	j.logger = sub.logger.With("job", j.id)

	// Content-addressed fast path: an identical (trace, optimizer,
	// params) submission completes instantly from the cache.
	if res, ok := s.cache.get(ctx, req.digest); ok {
		j.cached = true
		j.complete(res)
		s.storeJob(j)
		s.metrics.accepted.Inc()
		s.metrics.cacheHits.Inc()
		s.finish(j)
		writeJSON(w, http.StatusOK, j.view())
		return
	}

	// Account the trace bytes as in flight before the submit: once the
	// pool has the task, a worker may reach finish (which releases them)
	// at any moment.
	j.traceBytes = traceBytes
	s.metrics.inflightBytes.Add(j.traceBytes)
	s.storeJob(j)
	accepted := s.pool.TrySubmit(func(poolCtx context.Context) {
		s.runJob(poolCtx, j, req)
	})
	if !accepted {
		s.dropJob(j.id)
		jobCancel()
		s.metrics.inflightBytes.Add(-j.traceBytes)
		s.metrics.rejected.Inc()
		sub.logger.Warn("job rejected: queue full", "job", j.id)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, errors.New("job queue full"))
		return
	}
	s.metrics.accepted.Inc()
	j.logger.Info("job accepted",
		"prog", sub.progName, "opt", sub.optName, "prune", sub.pruneTopN,
		"trace_bytes", traceBytes, "trace_refs", tr.Len(), "digest", req.digest)
	writeJSON(w, http.StatusAccepted, j.view())
}

// decodeUpload decodes the streamed CLTR body while fingerprinting and
// counting its bytes, under a trace.decode span. Trailing bytes are
// drained so the digest covers the whole upload.
func decodeUpload(ctx context.Context, body io.Reader) (*trace.Trace, *trace.HashingReader, error) {
	sp := obs.StartSpan(ctx, "trace.decode")
	defer sp.End()
	hr := trace.NewHashingReader(body)
	dec, err := trace.NewDecoder(hr)
	if err != nil {
		return nil, nil, err
	}
	tr, err := dec.Decode()
	if err != nil {
		return nil, nil, err
	}
	if _, err := io.Copy(io.Discard, hr); err != nil {
		return nil, nil, err
	}
	sp.SetAttr("bytes", hr.BytesRead())
	sp.SetAttr("refs", int64(tr.Len()))
	return tr, hr, nil
}

// maxFormFieldBytes bounds the prog/opt/prune multipart form fields;
// longer values are rejected with 400 rather than truncated.
const maxFormFieldBytes = 256

// traceBody returns the reader holding the CLTR bytes, resolving
// multipart uploads without buffering the trace part. For multipart
// bodies, form fields named prog/opt/prune that appear before the
// "trace" part override empty query parameters.
func (s *Server) traceBody(w http.ResponseWriter, r *http.Request, progName, optName, pruneStr *string) (io.Reader, func(), error) {
	limited := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	cleanup := func() { limited.Close() }
	ct := r.Header.Get("Content-Type")
	mt, params, _ := mime.ParseMediaType(ct)
	if mt != "multipart/form-data" {
		return limited, cleanup, nil
	}
	boundary := params["boundary"]
	if boundary == "" {
		return nil, cleanup, errors.New("multipart body without boundary")
	}
	mr := multipart.NewReader(limited, boundary)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return nil, cleanup, errors.New(`multipart body has no "trace" part`)
		}
		if err != nil {
			return nil, cleanup, fmt.Errorf("reading multipart body: %w", err)
		}
		switch part.FormName() {
		case "trace":
			return part, cleanup, nil
		case "prog", "opt", "prune":
			// Read one byte past the field bound so an oversize value is
			// detected and rejected instead of silently truncated to a
			// plausible-looking (wrong) parameter.
			val, err := io.ReadAll(io.LimitReader(part, maxFormFieldBytes+1))
			if err != nil {
				return nil, cleanup, fmt.Errorf("reading %s field: %w", part.FormName(), err)
			}
			if len(val) > maxFormFieldBytes {
				return nil, cleanup, fmt.Errorf("multipart field %s exceeds %d bytes", part.FormName(), maxFormFieldBytes)
			}
			switch part.FormName() {
			case "prog":
				setIfEmpty(progName, string(val))
			case "opt":
				setIfEmpty(optName, string(val))
			case "prune":
				setIfEmpty(pruneStr, string(val))
			}
		}
	}
}

func setIfEmpty(dst *string, v string) {
	if *dst == "" {
		*dst = v
	}
}

// badBodyStatus maps a body-read failure to 413 when the upload cap
// tripped, 400 otherwise.
func badBodyStatus(err error) int {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// ---- job execution ----

// beginJob is the shared front half of every pool task: record queue
// wait into the job's timeline, bind the deadline and the job's own
// context (DELETE cancellation) onto the pipeline context, and move the
// job to running. It reports false — after finalizing the job when
// needed — if the work must be skipped (expired in queue, or canceled
// while queued); on true the caller owns cleanup and must defer it.
func (s *Server) beginJob(poolCtx context.Context, j *Job, deadline time.Time, reqCtx context.Context) (context.Context, func(), bool) {
	// The time between acceptance and this worker picking the task up
	// is queue wait; record it into the job's own timeline (the pool
	// hook feeds the histogram).
	if j.rec != nil {
		j.rec.Record("queue.wait", j.created, time.Since(j.created))
	}
	ctx, cancel := context.WithDeadline(poolCtx, deadline)
	// Propagate a DELETE arriving after the job started into the
	// pipeline context.
	stop := context.AfterFunc(reqCtx, cancel)
	cleanup := func() { stop(); cancel() }
	ctx = obs.WithTraceID(obs.WithLogger(obs.WithRecorder(ctx, j.rec), j.logger), j.traceID)
	if err := ctx.Err(); err != nil {
		cleanup()
		j.fail(fmt.Errorf("job expired before running: %w", err))
		s.metrics.failed.Inc()
		s.finish(j)
		return nil, nil, false
	}
	if !j.tryStart() {
		// Canceled while queued: the DELETE handler already counted it.
		cleanup()
		return nil, nil, false
	}
	j.logger.Info("job started",
		"queue_wait_ms", float64(time.Since(j.created))/float64(time.Millisecond))
	return ctx, cleanup, true
}

// failOrCancel finalizes a job whose pipeline returned an error: a job
// the client moved to canceling lands in canceled, anything else in
// failed.
func (s *Server) failOrCancel(j *Job, err error) {
	if j.statusNow() == StatusCanceling {
		j.finalizeCanceled()
		s.metrics.canceled.Inc()
	} else {
		j.fail(err)
		s.metrics.failed.Inc()
	}
	s.finish(j)
}

// runJob is the pool task behind POST /v1/jobs: run the optimization
// and publish the result to the content-addressed cache. The job's
// recorder, logger, and trace ID ride the pipeline context from here
// down.
func (s *Server) runJob(poolCtx context.Context, j *Job, req *jobRequest) {
	ctx, cleanup, ok := s.beginJob(poolCtx, j, req.deadline, req.ctx)
	if !ok {
		return
	}
	defer cleanup()
	start := time.Now()
	sp := obs.StartSpan(ctx, "optimize")
	res, err := s.optimize(ctx, req)
	sp.End()
	if err != nil {
		j.fail(err)
		s.metrics.failed.Inc()
		s.finish(j)
		return
	}
	elapsed := time.Since(start)
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	s.cache.put(ctx, res)
	j.complete(res)
	s.metrics.completed.Inc()
	s.metrics.latency.With(req.opt.Name()).Observe(res.ElapsedMS)
	s.finish(j)
}

// finish is the single exit point for every terminal job: fold the
// job's spans into the per-phase histograms, release its in-flight
// bytes, push a summary onto the debug ring, and log the outcome. Call
// exactly once per job, after its terminal status is set.
func (s *Server) finish(j *Job) {
	var spans []obs.SpanData
	if j.rec != nil {
		spans, _ = j.rec.Snapshot()
	}
	s.metrics.observePhases(spans)
	if j.traceBytes > 0 {
		s.metrics.inflightBytes.Add(-j.traceBytes)
	}
	v := j.view()
	sum := jobSummary{
		ID:        v.ID,
		Kind:      v.Kind,
		TraceID:   v.TraceID,
		Status:    v.Status,
		Prog:      j.progName,
		Optimizer: j.optName,
		Cached:    v.Cached,
		Error:     v.Error,
	}
	switch {
	case v.Result != nil:
		sum.ElapsedMS = v.Result.ElapsedMS
	case v.Corun != nil:
		sum.ElapsedMS = v.Corun.ElapsedMS
	case v.Schedule != nil:
		sum.ElapsedMS = v.Schedule.ElapsedMS
	}
	s.ring.push(sum)
	logger := j.logger
	if logger == nil {
		logger = obs.NopLogger
	}
	switch v.Status {
	case StatusFailed:
		logger.Error("job failed", "error", v.Error, "spans", len(spans))
	case StatusCanceled:
		logger.Info("job canceled", "spans", len(spans))
	default:
		logger.Info("job finished",
			"cached", v.Cached, "elapsed_ms", sum.ElapsedMS, "spans", len(spans))
	}
}

// runOptimize is the real pipeline: optimize the uploaded profile, then
// replay the same trace through the original and optimized layouts to
// report the simulated miss ratios before and after.
func (s *Server) runOptimize(ctx context.Context, req *jobRequest) (*Result, error) {
	opt := req.opt
	opt.PruneTopN = req.pruneTopN
	opt.Workers = s.cfg.OptWorkers
	opt.Arena = s.getArena()
	defer s.putArena(opt.Arena)
	prof := &core.Profile{Prog: req.prog, Blocks: req.trace}
	l, rep, err := opt.OptimizeCtx(ctx, prof)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("job deadline exceeded after optimization: %w", err)
	}
	cfg := cachesim.L1IDefault
	before := cachesim.SimulateSoloCtx(ctx, cfg,
		layout.NewReplayer(layout.Original(req.prog), req.trace, cfg.LineBytes, false)).Stats.MissRatio()
	after := cachesim.SimulateSoloCtx(ctx, cfg,
		layout.NewReplayer(l, req.trace, cfg.LineBytes, false)).Stats.MissRatio()
	return &Result{
		Digest:        req.digest,
		TraceDigest:   req.traceDigest,
		Prog:          req.progName,
		Optimizer:     req.opt.Name(),
		Report:        rep,
		MissBefore:    before,
		MissAfter:     after,
		MissReduction: stats.Reduction(before, after),
	}, nil
}

// ---- reads ----

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleCancel is DELETE /v1/jobs/{id}: cancel a job. Queued jobs of
// any kind cancel immediately. Running co-run and schedule jobs move to
// canceling — their context fires mid-matrix and the worker finalizes
// to canceled. A running *optimization* is not torn down mid-flight
// (409): its result is about to land in the content-addressed cache
// anyway. Unknown IDs get 404; terminal jobs 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if j.cancelQueued(s.now()) {
		s.metrics.canceled.Inc()
		s.finish(j)
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	if (j.kind == jobKindCorun || j.kind == jobKindSchedule) && j.cancelRunning() {
		// The worker observes the fired context, finalizes the status to
		// canceled, and counts it; the client polls GET /v1/jobs/{id}.
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}
	httpError(w, http.StatusConflict,
		fmt.Errorf("job %s is %s; only queued jobs (or running corun/schedule jobs) can be canceled", id, j.statusNow()))
	return
}

// handleDebugJobs is GET /v1/debug/jobs: the bounded ring of recent
// terminal-job summaries, newest first.
func (s *Server) handleDebugJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]jobSummary{"jobs": s.ring.snapshot()})
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if err := checkDigests(digest); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	res, ok := s.cache.get(r.Context(), digest)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached layout %q", digest))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleOptimizers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"optimizers": core.OptimizerNames()})
}

// healthzView is the GET /healthz body. The degraded reason rides the
// "degraded" key (matching what cluster health polling parses) and is
// omitted when healthy, so a healthy body never contains the word.
type healthzView struct {
	Status   string `json:"status"`
	NodeID   string `json:"node_id,omitempty"`
	Build    string `json:"build"`
	Degraded string `json:"degraded,omitempty"`
}

// handleHealthz reports liveness, identity, and build. When the durable
// store's circuit breaker is open the status is "degraded" with the
// breaker's last error as the reason: the daemon is serving from memory
// only and new results are not being persisted. Both states are 200 — a
// degraded layoutd is alive and should not be restarted by an
// orchestrator — but cluster peers observing "degraded" deprioritize
// this node when picking owners.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := healthzView{Status: "ok", NodeID: s.nodeID(), Build: buildString()}
	if s.disk != nil && s.disk.State() == store.StateDegraded {
		v.Status = "degraded"
		v.Degraded = s.disk.Stats().LastError
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WritePrometheus(w)
}

// ---- helpers ----

func (s *Server) getArena() *core.Arena {
	if a, ok := s.arenas.Get().(*core.Arena); ok {
		return a
	}
	return &core.Arena{}
}

func (s *Server) putArena(a *core.Arena) { s.arenas.Put(a) }

func (s *Server) storeJob(j *Job) {
	s.mu.Lock()
	s.pruneJobsLocked(s.now())
	s.jobs[j.id] = j
	s.mu.Unlock()
}

// pruneJobsLocked enforces the completed-job retention bound: terminal
// jobs past JobTTL are dropped, and when the map still exceeds MaxJobs
// the oldest terminal jobs go first. Queued and running jobs are always
// kept — only their status record is subject to retention, and the
// result itself stays in the content-addressed cache either way.
func (s *Server) pruneJobsLocked(now time.Time) {
	for id, j := range s.jobs {
		if fin, terminal := j.terminal(); terminal && now.Sub(fin) > s.cfg.JobTTL {
			delete(s.jobs, id)
		}
	}
	if len(s.jobs) < s.cfg.MaxJobs {
		return
	}
	type finished struct {
		id  string
		fin time.Time
	}
	var term []finished
	for id, j := range s.jobs {
		if fin, terminal := j.terminal(); terminal {
			term = append(term, finished{id: id, fin: fin})
		}
	}
	sort.Slice(term, func(i, j int) bool { return term[i].fin.Before(term[j].fin) })
	for i := 0; i < len(term) && len(s.jobs) >= s.cfg.MaxJobs; i++ {
		delete(s.jobs, term[i].id)
	}
}

// JobsTracked reports the number of job-status records currently held
// (for tests and metrics).
func (s *Server) JobsTracked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

func (s *Server) dropJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// program generates (once) and returns the named suite program.
func (s *Server) program(name string) (*ir.Program, error) {
	s.mu.Lock()
	e, ok := s.progs[name]
	if !ok {
		e = &progEntry{}
		s.progs[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.p, e.err = core.LoadProgram(name) })
	return e.p, e.err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	msg := strings.TrimSpace(err.Error())
	writeJSON(w, code, map[string]string{"error": msg})
}
