package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/core"
	"codelayout/internal/layout"
	"codelayout/internal/trace"
)

// testProg is the cheapest suite program to generate and profile.
const testProg = "458.sjeng"

var (
	traceOnce  sync.Once
	traceBytes []byte
	traceProf  *core.Profile
	traceErr   error
)

// recordedTrace profiles testProg once and returns its trimmed
// basic-block trace encoded as CLTR bytes — exactly what
// `tracedump -record` would have written.
func recordedTrace(t *testing.T) ([]byte, *core.Profile) {
	t.Helper()
	traceOnce.Do(func() {
		p, err := core.LoadProgram(testProg)
		if err != nil {
			traceErr = err
			return
		}
		prof, err := core.ProfileProgram(p, core.TrainSeed)
		if err != nil {
			traceErr = err
			return
		}
		var buf bytes.Buffer
		if _, err := prof.Blocks.Trimmed().WriteTo(&buf); err != nil {
			traceErr = err
			return
		}
		traceBytes = buf.Bytes()
		traceProf = prof
	})
	if traceErr != nil {
		t.Fatal(traceErr)
	}
	return traceBytes, traceProf
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submitRaw(t *testing.T, ts *httptest.Server, body []byte, query string) (jobView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job JSON %s: %v", raw, err)
		}
	}
	return v, resp.StatusCode
}

func errorBody(t *testing.T, ts *httptest.Server, body []byte, query string) (string, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &v)
	return v.Error, resp.StatusCode
}

func waitJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusDone || v.Status == StatusFailed || v.Status == StatusCanceled {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobView{}
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %f", &v); err != nil {
				t.Fatalf("parsing metric line %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, raw)
	return 0
}

// TestEndToEnd is the acceptance path: submit a recorded trace, poll
// the job, and check the result against a direct in-process run of the
// same optimizer on the same trace.
func TestEndToEnd(t *testing.T) {
	raw, prof := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 2, QueueDepth: 8, OptWorkers: 1})

	const optName = "func-affinity"
	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt="+optName)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if v.Status != StatusQueued && v.Status != StatusRunning {
		t.Fatalf("fresh job status %q", v.Status)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %+v", done)
	}
	res := done.Result
	if res == nil {
		t.Fatal("done job has no result")
	}

	// Reference: the same pipeline, run directly.
	tr, err := trace.ReadFrom(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.OptimizerByName(optName)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 1
	refProf := &core.Profile{Prog: prof.Prog, Blocks: tr}
	l, rep, err := opt.Optimize(refProf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Report.Sequence, rep.Sequence) {
		t.Error("served sequence differs from direct Optimize call")
	}
	if res.Report.SeqLen != rep.SeqLen || res.Report.TraceLen != rep.TraceLen {
		t.Errorf("served report %+v != direct %+v", res.Report, rep)
	}
	cfg := cachesim.L1IDefault
	wantBefore := cachesim.SimulateSolo(cfg,
		layout.NewReplayer(layout.Original(prof.Prog), tr, cfg.LineBytes, false)).Stats.MissRatio()
	wantAfter := cachesim.SimulateSolo(cfg,
		layout.NewReplayer(l, tr, cfg.LineBytes, false)).Stats.MissRatio()
	if res.MissBefore != wantBefore || res.MissAfter != wantAfter {
		t.Errorf("served miss ratios %v/%v != direct %v/%v",
			res.MissBefore, res.MissAfter, wantBefore, wantAfter)
	}
	if res.MissAfter >= res.MissBefore {
		t.Errorf("optimization did not reduce simulated misses: %v -> %v", res.MissBefore, res.MissAfter)
	}
	if res.TraceDigest != tr.Digest() {
		t.Errorf("trace digest %s != canonical %s", res.TraceDigest, tr.Digest())
	}
}

// TestCacheHit: resubmitting the identical trace+optimizer completes
// instantly from the content-addressed cache, visible in /metrics, and
// the layout stays addressable via /v1/layouts/{digest}.
func TestCacheHit(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})

	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-trg")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	first := waitJob(t, ts, v1.ID)
	if first.Status != StatusDone {
		t.Fatalf("first job failed: %+v", first)
	}
	if got := metricValue(t, ts, "layoutd_cache_hits_total"); got != 0 {
		t.Fatalf("cache hits before resubmit = %v", got)
	}

	v2, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-trg")
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200", code)
	}
	if !v2.Cached || v2.Status != StatusDone || v2.Result == nil {
		t.Fatalf("resubmit not served from cache: %+v", v2)
	}
	if v2.Digest != v1.Digest {
		t.Fatalf("digest changed across identical submissions: %s vs %s", v2.Digest, v1.Digest)
	}
	if got := metricValue(t, ts, "layoutd_cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %v, want 1", got)
	}
	if got := metricValue(t, ts, "layoutd_jobs_completed_total"); got != 1 {
		t.Fatalf("jobs_completed_total = %v, want 1 (cache hit must not recompute)", got)
	}

	// A different optimizer is a different content address.
	v3, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-callgraph")
	if code != http.StatusAccepted || v3.Digest == v1.Digest {
		t.Fatalf("distinct optimizer shared a digest (code %d)", code)
	}
	waitJob(t, ts, v3.ID)

	// Fetch by content address.
	resp, err := http.Get(ts.URL + "/v1/layouts/" + v1.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/layouts/%s = %d", v1.Digest, resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Optimizer != "func-trg" || len(res.Report.Sequence) == 0 {
		t.Fatalf("cached layout lookup returned %+v", res)
	}
}

// TestMultipartSubmission exercises the streaming multipart path with
// params carried as form fields.
func TestMultipartSubmission(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("prog", testProg); err != nil {
		t.Fatal(err)
	}
	if err := mw.WriteField("opt", "func-callgraph"); err != nil {
		t.Fatal(err)
	}
	fw, err := mw.CreateFormFile("trace", "t.trace")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(raw); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("multipart submit status %d: %s", resp.StatusCode, raw)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("multipart job failed: %+v", done)
	}
}

// TestQueueFull429: with one slow worker and a one-deep queue, the
// third concurrent submission is rejected with 429 and counted.
func TestQueueFull429(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1, OptWorkers: 1})

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	real := s.optimize
	s.optimize = func(ctx context.Context, req *jobRequest) (*Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return real(ctx, req)
	}

	// Occupy the worker, then the queue slot. Distinct prune params keep
	// each submission out of the others' content address.
	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=100")
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 status %d", code)
	}
	<-started
	_, code = submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=101")
	if code != http.StatusAccepted {
		t.Fatalf("submit 2 status %d", code)
	}
	msg, code := errorBody(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=102")
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 status %d, want 429", code)
	}
	if !strings.Contains(msg, "queue full") {
		t.Errorf("429 body %q", msg)
	}
	if got := metricValue(t, ts, "layoutd_jobs_rejected_total"); got != 1 {
		t.Errorf("jobs_rejected_total = %v, want 1", got)
	}
	close(release)
	if done := waitJob(t, ts, v1.ID); done.Status != StatusDone {
		t.Fatalf("job 1 failed after release: %+v", done)
	}
}

// TestShutdownDrainsInFlight: Shutdown waits for queued and running
// jobs to finish, and post-shutdown submissions are rejected.
func TestShutdownDrainsInFlight(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	entered := make(chan struct{}, 8)
	real := s.optimize
	s.optimize = func(ctx context.Context, req *jobRequest) (*Result, error) {
		entered <- struct{}{}
		time.Sleep(50 * time.Millisecond) // in flight while Shutdown runs
		return real(ctx, req)
	}

	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=200")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v2, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=201")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, v := range []jobView{v1, v2} {
		got := waitJob(t, ts, v.ID)
		if got.Status != StatusDone {
			t.Errorf("job %s not drained: %+v", v.ID, got)
		}
	}
	if _, code := errorBody(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=202"); code != http.StatusTooManyRequests {
		t.Errorf("post-shutdown submit status %d, want 429", code)
	}
}

// TestBadRequests covers the 400 surface: corrupt container, unknown
// optimizer/program, out-of-range symbols, missing params.
func TestBadRequests(t *testing.T) {
	raw, prof := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	cases := []struct {
		name     string
		body     []byte
		query    string
		wantCode int
		wantMsg  string
	}{
		{"bad magic", []byte("XXXX\x01\x00"), "prog=" + testProg + "&opt=func-affinity", 400, "bad magic"},
		{"truncated", []byte("CLTR\x01\x05\x02"), "prog=" + testProg + "&opt=func-affinity", 400, "occurrence"},
		{"empty trace", encodeTrace(t, nil), "prog=" + testProg + "&opt=func-affinity", 400, "empty"},
		{"unknown optimizer", raw, "prog=" + testProg + "&opt=nope", 400, "unknown optimizer"},
		{"unknown program", raw, "prog=999.nope&opt=func-affinity", 400, "999.nope"},
		{"missing params", raw, "", 400, "prog and opt"},
		{"symbol out of range", encodeTrace(t, []int32{int32(prof.Prog.NumBlocks() + 7)}),
			"prog=" + testProg + "&opt=func-affinity", 400, "out of range"},
	}
	for _, c := range cases {
		msg, code := errorBody(t, ts, c.body, c.query)
		if code != c.wantCode {
			t.Errorf("%s: status %d, want %d", c.name, code, c.wantCode)
		}
		if !strings.Contains(msg, c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, msg, c.wantMsg)
		}
	}
}

func encodeTrace(t *testing.T, syms []int32) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := trace.New(syms).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFailedJobIsReported: a pipeline error surfaces as a failed job
// with its message, and counts in the failure metric.
func TestFailedJobIsReported(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})
	s.optimize = func(ctx context.Context, req *jobRequest) (*Result, error) {
		return nil, errors.New("synthetic pipeline failure")
	}
	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=bb-trg")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "synthetic") {
		t.Fatalf("job = %+v, want failed with message", done)
	}
	if got := metricValue(t, ts, "layoutd_jobs_failed_total"); got != 1 {
		t.Errorf("jobs_failed_total = %v, want 1", got)
	}
}

// TestHealthAndRegistry: liveness and the optimizer registry endpoint.
func TestHealthAndRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/optimizers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Optimizers []string `json:"optimizers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Optimizers, core.OptimizerNames()) {
		t.Errorf("registry endpoint = %v", v.Optimizers)
	}
}

// TestMetricsHistogram: latency observations land in the per-optimizer
// histogram with consistent bucket cumulation.
func TestMetricsHistogram(t *testing.T) {
	m := newMetrics()
	m.observeLatency("func-trg", 3*time.Millisecond)
	m.observeLatency("func-trg", 30*time.Millisecond)
	m.observeLatency("func-trg", time.Minute)
	out := m.render(0, 0, 0, nil)
	for _, want := range []string{
		`layoutd_optimize_latency_ms_bucket{optimizer="func-trg",le="5"} 1`,
		`layoutd_optimize_latency_ms_bucket{optimizer="func-trg",le="50"} 2`,
		`layoutd_optimize_latency_ms_bucket{optimizer="func-trg",le="+Inf"} 3`,
		`layoutd_optimize_latency_ms_count{optimizer="func-trg"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}
