package footprint

import (
	"math/rand"
	"testing"
)

// phasedTrace loops over k symbols per phase, p phases, reps loops per
// phase — the shape of real instruction traces.
func phasedTrace(k, phases, reps int) []int32 {
	var syms []int32
	for ph := 0; ph < phases; ph++ {
		for r := 0; r < reps; r++ {
			for i := 0; i < k; i++ {
				syms = append(syms, int32(ph*k+i))
			}
		}
	}
	return syms
}

func TestCorunPeerNeverHelps(t *testing.T) {
	// Any peer shrinks the effective capacity, so the predicted co-run
	// miss ratio is at least the solo one. (Between two peers the model
	// is not necessarily monotone: the miss ratio is the footprint
	// slope at the boundary window, and the slope of a phased trace is
	// not monotone in w.)
	self := NewCurve(phasedTrace(24, 3, 30), nil)
	small := NewCurve(phasedTrace(8, 1, 90), nil)
	big := NewCurve(phasedTrace(40, 1, 40), nil)
	const c = 48.0
	mrSolo := self.MissRatioAt(c)
	for name, peer := range map[string]*Curve{"small": small, "big": big} {
		if mr := CorunMissRatio(self, peer, c); mr < mrSolo {
			t.Errorf("%s peer lowered misses: %v < solo %v", name, mr, mrSolo)
		}
	}
}

func TestCorunMissMonotoneInCapacity(t *testing.T) {
	self := NewCurve(phasedTrace(24, 2, 40), nil)
	peer := NewCurve(phasedTrace(24, 2, 40), nil)
	prev := 2.0
	for _, c := range []float64{8, 16, 32, 64, 128} {
		mr := CorunMissRatio(self, peer, c)
		if mr > prev+1e-9 {
			t.Fatalf("miss ratio rose with capacity at c=%v: %v > %v", c, mr, prev)
		}
		prev = mr
	}
}

func TestWeightedCurveScalesWithBlockSizes(t *testing.T) {
	syms := phasedTrace(10, 2, 20)
	unit := NewCurve(syms, nil)
	weights := make([]int32, 40)
	for i := range weights {
		weights[i] = 64
	}
	weighted := NewCurve(syms, weights)
	// Scaling every weight by 64 scales the whole curve by 64.
	for _, w := range []int{1, 10, 100, len(syms)} {
		if got, want := weighted.At(w), 64*unit.At(w); !close(got, want) {
			t.Fatalf("FP(%d): weighted %v != 64*unit %v", w, got, want)
		}
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-6
}

func TestSlopeNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	syms := make([]int32, 3000)
	for i := range syms {
		syms[i] = int32(rng.Intn(50))
	}
	c := NewCurve(syms, nil)
	for w := 0; w < c.N; w++ {
		if c.Slope(w) < -1e-9 {
			t.Fatalf("negative slope at w=%d", w)
		}
	}
}

func TestAnalyzeSoloOnlyBenefitCase(t *testing.T) {
	// The paper highlights optimizations that do not improve solo run
	// but improve co-run: base fits the cache alone, so does opt — both
	// solo miss 0 — but only opt fits alongside the peer.
	base := NewCurve(phasedTrace(24, 1, 60), nil) // 24 symbols
	opt := NewCurve(phasedTrace(12, 1, 120), nil) // packed to 12
	peer := NewCurve(phasedTrace(20, 1, 70), nil) // 20 symbols
	rep := Analyze(base, opt, peer, 36)
	if rep.SoloBase != 0 || rep.SoloOpt != 0 {
		t.Fatalf("solo misses should be 0/0: %v/%v", rep.SoloBase, rep.SoloOpt)
	}
	if rep.SelfCorunBase <= 0 {
		t.Fatal("base should contend with the peer")
	}
	if rep.SelfCorunOpt >= rep.SelfCorunBase {
		t.Fatal("optimization should relieve co-run misses")
	}
	if rep.LocalityGain() != 0 || rep.DefensivenessGain() <= 0 {
		t.Errorf("gains: locality %v defensiveness %v", rep.LocalityGain(), rep.DefensivenessGain())
	}
}
