// Package profiling wires runtime/pprof file profiles into the CLI
// tools, so kernel work (affinity stack passes, TRG construction, cache
// simulation) can be profiled in situ with the standard toolchain:
//
//	layoutopt -prog 445.gobmk -opt bb-affinity -cpuprofile cpu.prof
//	go tool pprof cpu.prof
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths
// and returns a stop function to run at process exit. The CPU profile
// records from Start to stop; the heap profile is written at stop after
// a final GC, so it reflects live steady-state memory, not transients.
func Start(cpuProfile, memProfile string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuProfile != "" {
		cpuFile, err = os.Create(cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
