package codelayout_test

// Facade tests: exercise the library exactly as a downstream user
// would, through the root package only.

import (
	"strings"
	"testing"

	"codelayout"
)

func TestFacadePipeline(t *testing.T) {
	prog, err := codelayout.LoadBenchmark("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := codelayout.ProfileProgram(prog, codelayout.TrainSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range codelayout.AllOptimizers() {
		l, rep, err := opt.Optimize(prof)
		if err != nil {
			t.Errorf("%s: %v", opt.Name(), err)
			continue
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", opt.Name(), err)
		}
		if rep.SeqLen == 0 {
			t.Errorf("%s: empty sequence", opt.Name())
		}
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := codelayout.NewProgramBuilder("demo", 1)
	f := b.Func("main")
	e := f.Block("entry", 16)
	taken := f.Block("taken", 16)
	fall := f.Block("fall", 16)
	e.Set(0, 1)
	e.Branch(codelayout.CondGlobalEq(0, 1), taken, fall)
	taken.Exit()
	fall.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := codelayout.ProfileProgram(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The branch always takes: only entry and taken execute.
	if prof.Steps != 2 {
		t.Errorf("Steps = %d, want 2", prof.Steps)
	}
	if codelayout.CondAlways() == nil || codelayout.CondProb(0.5) == nil || codelayout.CondGlobalLT(0, 3) == nil {
		t.Error("condition constructors returned nil")
	}
}

func TestFacadeModelExamples(t *testing.T) {
	f1 := codelayout.Figure1()
	if !strings.Contains(f1.String(), "B1 B4 B2 B3 B5") {
		t.Error("Figure 1 sequence wrong through facade")
	}
	f2 := codelayout.Figure2()
	if len(f2.Sequence) != 5 {
		t.Error("Figure 2 wrong through facade")
	}
	f3, err := codelayout.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if f3.SpanOptimized >= f3.SpanOriginal {
		t.Error("Figure 3 packing missing through facade")
	}
}

func TestFacadeFootprintTheory(t *testing.T) {
	cyc := func(k, reps int) []int32 {
		var s []int32
		for r := 0; r < reps; r++ {
			for i := 0; i < k; i++ {
				s = append(s, int32(i))
			}
		}
		return s
	}
	self := codelayout.NewFootprintCurve(cyc(20, 40), nil)
	peer := codelayout.NewFootprintCurve(cyc(20, 40), nil)
	if got := codelayout.PredictCorunMiss(self, peer, 100); got != 0 {
		t.Errorf("big cache corun miss = %v, want 0", got)
	}
	if got := codelayout.PredictCorunMiss(self, peer, 30); got <= 0 {
		t.Errorf("small cache corun miss = %v, want > 0", got)
	}
	opt := codelayout.NewFootprintCurve(cyc(10, 80), nil)
	rep := codelayout.AnalyzeSharing(self, opt, peer, 35)
	if rep.DefensivenessGain() <= 0 {
		t.Errorf("DefensivenessGain = %v, want > 0", rep.DefensivenessGain())
	}
}

func TestFacadeSuites(t *testing.T) {
	if len(codelayout.MainSuiteNames) != 8 {
		t.Errorf("MainSuiteNames = %d entries", len(codelayout.MainSuiteNames))
	}
	specs := codelayout.ScreeningSuiteSpecs()
	if len(specs) != 29 {
		t.Errorf("screening suite = %d entries", len(specs))
	}
	p, err := codelayout.GenerateBenchmark(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := codelayout.LoadBenchmark("no.such"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFacadeWorkspaceMeasurement(t *testing.T) {
	w := codelayout.NewWorkspace()
	b, err := w.Bench("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	hw, err := b.HWSolo("original")
	if err != nil {
		t.Fatal(err)
	}
	if hw.Thread.Cycles == 0 || hw.Thread.Instrs == 0 {
		t.Error("empty measurement")
	}
	sim, err := b.SimSolo("original")
	if err != nil {
		t.Fatal(err)
	}
	if sim < 0 || sim > 1 {
		t.Errorf("sim miss ratio = %v", sim)
	}
}
