package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeans(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{0, -3}); got != 0 {
		t.Errorf("GeoMean of non-positives = %v, want 0", got)
	}
	if Min([]float64{3, 1, 2}) != 1 || Max([]float64{3, 1, 2}) != 3 {
		t.Error("Min/Max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestChanges(t *testing.T) {
	if got := RelChange(2, 3); got != 0.5 {
		t.Errorf("RelChange = %v", got)
	}
	if got := Reduction(4, 3); got != 0.25 {
		t.Errorf("Reduction = %v", got)
	}
	if RelChange(0, 5) != 0 || Reduction(0, 5) != 0 {
		t.Error("zero-base changes should be 0")
	}
}

func TestFormats(t *testing.T) {
	if got := Pct(0.0432); got != "4.32%" {
		t.Errorf("Pct = %q", got)
	}
	if got := SignedPct(0.0722); got != "+7.22%" {
		t.Errorf("SignedPct = %q", got)
	}
	if got := SignedPct(-0.0057); got != "-0.57%" {
		t.Errorf("SignedPct = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"prog", "miss"}}
	tb.Add("perlbench", "1.99%")
	tb.Add("gcc", "1.56%")
	out := tb.String()
	if !strings.Contains(out, "perlbench") || !strings.Contains(out, "1.56%") {
		t.Errorf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Right-aligned numeric column: both rows end aligned.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}
