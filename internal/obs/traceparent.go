package obs

// W3C Trace Context (https://www.w3.org/TR/trace-context/) support:
// parsing and formatting of the traceparent header, so layoutd spans
// stitch into a caller's distributed trace and cluster peer hops carry
// one trace ID end to end.
//
// The wire form is fixed-width lowercase hex:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -  32 hex    -   16 hex    -   2 hex
//
// Both ParseTraceparent and AppendTraceparent are allocation-free on
// the hot path (gated in BENCH_PR10.json): the parser returns
// substrings of its input, and the formatter appends into the caller's
// buffer. Legacy compatibility: trace IDs minted before the W3C
// widening were 16 hex chars; the parser accepts a 16-hex trace-id
// field, and the formatter left-pads short IDs with zeros so a legacy
// ID still produces a spec-valid header.

// TraceparentHeader is the canonical header name (HTTP canonicalizes
// case, so "traceparent" and "Traceparent" are the same header).
const TraceparentHeader = "Traceparent"

// Traceparent is a parsed traceparent header.
type Traceparent struct {
	TraceID string // 32 (or legacy 16) lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
	Sampled bool   // trace-flags bit 0
}

const (
	traceIDHexLen       = 32
	legacyTraceIDHexLen = 16
	spanIDHexLen        = 16
	// MaxTraceparentLen is the byte length of a formatted header:
	// version + trace-id + parent-id + flags + three separators.
	MaxTraceparentLen = 2 + 1 + traceIDHexLen + 1 + spanIDHexLen + 1 + 2
	legacyLen         = 2 + 1 + legacyTraceIDHexLen + 1 + spanIDHexLen + 1 + 2
)

// ValidTraceID reports whether s is an acceptable layoutd trace ID: 32
// lowercase hex chars (the W3C width) or the legacy 16-hex width, and
// not all zeros (the W3C invalid marker).
func ValidTraceID(s string) bool {
	if len(s) != traceIDHexLen && len(s) != legacyTraceIDHexLen {
		return false
	}
	return allLowerHex(s) && !allZero(s)
}

// ParseTraceparent parses a traceparent header value. It accepts any
// known version except the invalid 0xff, requires lowercase hex (per
// spec — uppercase is invalid on the wire), rejects all-zero trace and
// span IDs, and additionally accepts the 39-char legacy form whose
// trace-id field is 16 hex chars (a pre-widening layoutd node). The
// returned fields are substrings of h: no allocation.
func ParseTraceparent(h string) (Traceparent, bool) {
	var tp Traceparent
	if len(h) < legacyLen {
		return tp, false
	}
	if !isLowerHexByte(h[0]) || !isLowerHexByte(h[1]) || h[2] != '-' {
		return tp, false
	}
	if h[0] == 'f' && h[1] == 'f' {
		return tp, false // version 0xff is forbidden
	}
	// Field widths decide the form: standard has its second separator
	// at byte 35, the legacy form at byte 19.
	var idEnd int
	switch {
	case len(h) >= MaxTraceparentLen && h[3+traceIDHexLen] == '-':
		idEnd = 3 + traceIDHexLen
	case h[3+legacyTraceIDHexLen] == '-':
		idEnd = 3 + legacyTraceIDHexLen
	default:
		return tp, false
	}
	traceID := h[3:idEnd]
	spanStart := idEnd + 1
	spanEnd := spanStart + spanIDHexLen
	// spanEnd+3 = separator + two flag chars.
	if len(h) < spanEnd+3 || h[spanEnd] != '-' {
		return tp, false
	}
	spanID := h[spanStart:spanEnd]
	f1, f2 := h[spanEnd+1], h[spanEnd+2]
	if !isLowerHexByte(f1) || !isLowerHexByte(f2) {
		return tp, false
	}
	if len(h) > spanEnd+3 {
		// Trailing data is only legal on future versions, and then only
		// after a separator (version 00 is exactly the fixed form).
		if h[0] == '0' && h[1] == '0' {
			return tp, false
		}
		if h[spanEnd+3] != '-' {
			return tp, false
		}
	}
	if !allLowerHex(traceID) || allZero(traceID) {
		return tp, false
	}
	if !allLowerHex(spanID) || allZero(spanID) {
		return tp, false
	}
	tp.TraceID = traceID
	tp.SpanID = spanID
	tp.Sampled = hexNibble(f2)&0x1 == 1
	return tp, true
}

// AppendTraceparent appends a version-00 traceparent header for the
// given IDs to dst and returns the extended slice. A legacy 16-hex
// trace ID is left-padded with zeros to the W3C width. When dst has
// capacity MaxTraceparentLen the call allocates nothing. The IDs are
// not validated — pass IDs from NewTraceID/NewSpanID/ParseTraceparent.
func AppendTraceparent(dst []byte, traceID, spanID string, sampled bool) []byte {
	dst = append(dst, '0', '0', '-')
	for i := len(traceID); i < traceIDHexLen; i++ {
		dst = append(dst, '0')
	}
	dst = append(dst, traceID...)
	dst = append(dst, '-')
	dst = append(dst, spanID...)
	if sampled {
		dst = append(dst, '-', '0', '1')
	} else {
		dst = append(dst, '-', '0', '0')
	}
	return dst
}

// FormatTraceparent renders a version-00 traceparent header string.
// Convenience wrapper over AppendTraceparent for call sites that are
// about to cross a network boundary anyway.
func FormatTraceparent(traceID, spanID string, sampled bool) string {
	buf := make([]byte, 0, MaxTraceparentLen)
	return string(AppendTraceparent(buf, traceID, spanID, sampled))
}

func isLowerHexByte(b byte) bool {
	return (b >= '0' && b <= '9') || (b >= 'a' && b <= 'f')
}

func hexNibble(b byte) byte {
	if b >= 'a' {
		return b - 'a' + 10
	}
	return b - '0'
}

func allLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isLowerHexByte(s[i]) {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
