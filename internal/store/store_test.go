package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"codelayout/internal/fault"
)

// testLogf silences store logs unless the test fails.
func testLogf(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

func openStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = testLogf(t)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	payload := []byte(`{"digest":"abc","report":[1,2,3]}`)
	s.Put("abc", payload)
	s.Flush()
	got, ok := s.Get("abc")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get of unknown key succeeded")
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 1 || st.Blobs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes != int64(len(payload)) {
		t.Errorf("bytes = %d, want %d", st.Bytes, len(payload))
	}
}

func TestSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	payload := []byte("the layout that must not be recomputed")
	s.Put("k", payload)
	s.Flush()
	s.Close()

	s2 := openStore(t, Config{Dir: dir})
	got, ok := s2.Get("k")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after restart Get = %q, %v", got, ok)
	}
	if s2.Stats().Quarantined != 0 {
		t.Errorf("clean restart quarantined %d blobs", s2.Stats().Quarantined)
	}
}

func TestPutIsIdempotentByKey(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	s.Put("k", []byte("v"))
	s.Flush()
	s.Put("k", []byte("v"))
	s.Flush()
	if st := s.Stats(); st.Writes != 1 || st.Blobs != 1 {
		t.Errorf("duplicate Put wrote again: %+v", st)
	}
}

// TestCrashSafeWriteFailure: a write that fails mid-blob leaves no
// blob, no temp file, and trips the breaker.
func TestCrashSafeWriteFailure(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS(), fault.Rule{Op: fault.OpWrite, Nth: 2, Err: syscall.ENOSPC})
	s := openStore(t, Config{Dir: dir, FS: inj})
	s.Put("k", []byte("payload"))
	s.Flush()

	if st := s.Stats(); st.WriteErrors != 1 || st.Writes != 0 || st.Blobs != 0 {
		t.Errorf("stats after failed write = %+v", st)
	}
	if s.State() != StateDegraded {
		t.Error("failed write did not trip the breaker")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !e.IsDir() {
			t.Errorf("failed write left file %s behind", e.Name())
		}
	}
}

// TestStartupRecovery: the startup scan deletes stray temp files and
// quarantines truncated, corrupted, and foreign blobs, keeping the
// good ones.
func TestStartupRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	s.Put("good", []byte("intact payload"))
	s.Put("doomed", []byte("will be truncated"))
	s.Put("bitrot", []byte("will be flipped"))
	s.Flush()
	s.Close()

	// Simulate the crash artifacts: a half-written temp file, a
	// truncated blob, and a blob with a flipped payload byte.
	if err := os.WriteFile(filepath.Join(dir, "stray.tmp"), []byte("CLSB\x01junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	doomed := filepath.Join(dir, "doomed"+blobSuffix)
	raw, err := os.ReadFile(doomed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doomed, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	bitrot := filepath.Join(dir, "bitrot"+blobSuffix)
	raw, err = os.ReadFile(bitrot)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerLen] ^= 0xff
	if err := os.WriteFile(bitrot, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, Config{Dir: dir})
	if got, ok := s2.Get("good"); !ok || string(got) != "intact payload" {
		t.Errorf("good blob lost in recovery: %q, %v", got, ok)
	}
	for _, k := range []string{"doomed", "bitrot"} {
		if _, ok := s2.Get(k); ok {
			t.Errorf("corrupt blob %s served after recovery", k)
		}
	}
	if st := s2.Stats(); st.Quarantined != 2 || st.Blobs != 1 {
		t.Errorf("recovery stats = %+v, want 2 quarantined, 1 blob", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "stray.tmp")); !os.IsNotExist(err) {
		t.Error("stray temp file survived recovery")
	}
	qents, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil || len(qents) != 2 {
		t.Errorf("quarantine dir holds %d files (%v), want 2", len(qents), err)
	}
}

// TestGetQuarantinesRot: a blob that rots after startup is quarantined
// at read time and stops being indexed.
func TestGetQuarantinesRot(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	s.Put("k", []byte("payload"))
	s.Flush()
	path := filepath.Join(dir, "k"+blobSuffix)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // corrupt the checksum
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("rotted blob served")
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Blobs != 0 {
		t.Errorf("stats after rot = %+v", st)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("rotted blob still indexed")
	}
}

// TestLRUByteBound: inserts past MaxBytes evict the least recently
// used blob from disk; Get refreshes recency.
func TestLRUByteBound(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 60)
	s := openStore(t, Config{Dir: dir, MaxBytes: 150})
	s.Put("a", payload)
	s.Flush()
	s.Put("b", payload)
	s.Flush()
	// Touch a so b is now the LRU victim.
	if _, ok := s.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	s.Put("c", payload)
	s.Flush()

	if _, ok := s.Get("b"); ok {
		t.Error("LRU blob b survived the byte bound")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("blob %s evicted, want kept", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Blobs != 2 || st.Bytes != 120 {
		t.Errorf("stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "b"+blobSuffix)); !os.IsNotExist(err) {
		t.Error("evicted blob file still on disk")
	}
}

// TestBreakerBackoffAndRecovery drives the full circuit: trip on
// ENOSPC, drop writes while degraded, double the probe backoff on a
// failed probe, and close the circuit when the disk heals.
func TestBreakerBackoffAndRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := fault.NewFakeClock(time.Unix(0, 0))
	inj := fault.NewInjector(fault.OS(), fault.Rule{Op: fault.OpWrite, Err: syscall.ENOSPC})
	s := openStore(t, Config{
		Dir: dir, FS: inj, Clock: clk,
		ProbeBackoff: 10 * time.Second, MaxBackoff: time.Minute,
	})

	// First write fails: breaker trips, probe scheduled at t+10s.
	s.Put("k1", []byte("v1"))
	s.Flush()
	if s.State() != StateDegraded {
		t.Fatal("breaker did not trip")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1", st.WriteErrors)
	}

	// Before probe time: writes are dropped without touching the disk.
	wbefore := inj.Counts()[fault.OpWrite]
	s.Put("k2", []byte("v2"))
	s.Flush()
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
	if inj.Counts()[fault.OpWrite] != wbefore {
		t.Error("degraded store touched the disk before probe time")
	}

	// Probe at t+11s fails: backoff doubles (next probe t+31s).
	clk.Advance(11 * time.Second)
	s.Put("k3", []byte("v3"))
	s.Flush()
	if st := s.Stats(); st.WriteErrors != 2 {
		t.Errorf("write errors after failed probe = %d, want 2", st.WriteErrors)
	}

	// Disk heals, but the doubled backoff gates the next attempt:
	// at t+20s (only 9s past the failed probe) writes still drop.
	inj.SetRules()
	clk.Advance(9 * time.Second)
	s.Put("k4", []byte("v4"))
	s.Flush()
	if s.State() != StateDegraded {
		t.Error("probe ran before the doubled backoff elapsed")
	}

	// Past the doubled backoff the probe succeeds and the circuit
	// closes.
	clk.Advance(15 * time.Second)
	s.Put("k5", []byte("v5"))
	s.Flush()
	if s.State() != StateOK {
		t.Fatal("breaker did not close after successful probe")
	}
	st := s.Stats()
	if st.Recoveries != 1 || st.Writes != 1 {
		t.Errorf("stats after recovery = %+v", st)
	}
	if got, ok := s.Get("k5"); !ok || string(got) != "v5" {
		t.Errorf("probe write not readable: %q, %v", got, ok)
	}

	// Recovered store persists normally again.
	s.Put("k6", []byte("v6"))
	s.Flush()
	if _, ok := s.Get("k6"); !ok {
		t.Error("write after recovery not persisted")
	}
}

// TestDegradedGetFastFails: while degraded, Get does not trust the
// disk even for blobs indexed before the trip.
func TestDegradedGetFastFails(t *testing.T) {
	dir := t.TempDir()
	clk := fault.NewFakeClock(time.Unix(0, 0))
	inj := fault.NewInjector(fault.OS())
	s := openStore(t, Config{Dir: dir, FS: inj, Clock: clk, ProbeBackoff: 10 * time.Second})
	s.Put("k", []byte("v"))
	s.Flush()
	inj.SetRules(fault.Rule{Op: fault.OpWrite, Err: syscall.EIO})
	s.Put("k2", []byte("v2"))
	s.Flush()
	if s.State() != StateDegraded {
		t.Fatal("breaker did not trip")
	}
	if _, ok := s.Get("k"); ok {
		t.Error("degraded Get served from the untrusted disk")
	}
}

// TestQueueFullDrops: a full write-behind queue sheds load instead of
// blocking the caller.
func TestQueueFullDrops(t *testing.T) {
	dir := t.TempDir()
	// A slow disk: every write stalls long enough for the queue to fill.
	inj := fault.NewInjector(fault.OS(), fault.Rule{Op: fault.OpWrite, Delay: 20 * time.Millisecond})
	s := openStore(t, Config{Dir: dir, FS: inj, QueueDepth: 1})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%02d", i), []byte("v"))
	}
	s.Flush()
	st := s.Stats()
	if st.Dropped == 0 {
		t.Error("full queue never dropped a write")
	}
	if st.Writes+st.Dropped != 20 {
		t.Errorf("writes %d + dropped %d != 20 puts", st.Writes, st.Dropped)
	}
}

func TestPutAfterCloseIsIgnored(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	s.Close()
	s.Put("k", []byte("v")) // must not panic or deadlock
	s.Flush()
	if s.Len() != 0 {
		t.Error("Put after Close persisted")
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("Open with no dir = %v", err)
	}
}

// TestCloseDrainsQueuedWrites: Close attempts every queued write, so a
// graceful shutdown loses nothing.
func TestCloseDrainsQueuedWrites(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, QueueDepth: 64})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	s.Close()
	s2 := openStore(t, Config{Dir: dir})
	if got := s2.Len(); got != 10 {
		t.Errorf("after drain+restart %d blobs, want 10", got)
	}
}

// TestReadErrorsTripBreaker: repeated read-side I/O errors open the
// same circuit breaker as write failures. Per-blob quarantine alone is
// the wrong response to a dead disk — it would grind through (and
// forget) every blob one failed read at a time, so consecutive EIO
// reads degrade the store while keeping the index intact for recovery.
func TestReadErrorsTripBreaker(t *testing.T) {
	dir := t.TempDir()
	clk := fault.NewFakeClock(time.Unix(0, 0))
	inj := fault.NewInjector(fault.OS())
	s := openStore(t, Config{
		Dir: dir, FS: inj, Clock: clk,
		ProbeBackoff: 10 * time.Second,
	})
	s.Put("k", []byte("v"))
	s.Flush()

	rules, err := fault.ParseSpec("read:every=1,err=EIO")
	if err != nil {
		t.Fatal(err)
	}

	// A sub-threshold run of failures followed by a good read must not
	// trip: the consecutive counter resets on success.
	inj.SetRules(rules...)
	for i := 0; i < DefaultReadTripThreshold-1; i++ {
		if _, ok := s.Get("k"); ok {
			t.Fatal("Get succeeded under EIO injection")
		}
	}
	inj.SetRules()
	if _, ok := s.Get("k"); !ok {
		t.Fatal("Get failed after injection cleared")
	}
	if s.State() != StateOK {
		t.Fatalf("breaker opened below the consecutive threshold")
	}

	// A full run of consecutive failures trips it.
	inj.SetRules(rules...)
	for i := 0; i < DefaultReadTripThreshold; i++ {
		if s.State() != StateOK {
			t.Fatalf("breaker opened after %d read errors, threshold %d", i, DefaultReadTripThreshold)
		}
		if _, ok := s.Get("k"); ok {
			t.Fatal("Get succeeded under EIO injection")
		}
	}
	if s.State() != StateDegraded {
		t.Fatal("consecutive read errors did not trip the breaker")
	}
	st := s.Stats()
	if st.ReadErrors != int64(2*DefaultReadTripThreshold-1) {
		t.Errorf("read errors = %d, want %d", st.ReadErrors, 2*DefaultReadTripThreshold-1)
	}
	if st.WriteErrors != 0 {
		t.Errorf("read-side trip counted write errors: %+v", st)
	}
	if st.Quarantined != 0 || st.Blobs != 1 {
		t.Errorf("I/O errors must not quarantine or drop blobs: %+v", st)
	}

	// Disk heals; the next write past the backoff probes, closes the
	// circuit, and the never-dropped blob is served again.
	inj.SetRules()
	clk.Advance(11 * time.Second)
	s.Put("k2", []byte("v2"))
	s.Flush()
	if s.State() != StateOK {
		t.Fatal("probe write did not close the read-tripped breaker")
	}
	if got, ok := s.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("blob lost across read trip + recovery: %q, %v", got, ok)
	}
	if st := s.Stats(); st.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1", st.Recoveries)
	}
}

func TestEntriesListing(t *testing.T) {
	dir := t.TempDir()
	clk := fault.NewFakeClock(time.Unix(1000, 0))
	s := openStore(t, Config{Dir: dir, Clock: clk})
	s.Put("aaa", []byte("one"))
	s.Flush()
	clk.Advance(time.Minute)
	s.Put("t-bbb", []byte("fourch"))
	s.Flush()
	ents := s.Entries()
	if len(ents) != 2 {
		t.Fatalf("Entries = %d, want 2", len(ents))
	}
	// Most recently used first: the later insert leads.
	if ents[0].Key != "t-bbb" || ents[1].Key != "aaa" {
		t.Fatalf("order = %s, %s", ents[0].Key, ents[1].Key)
	}
	if ents[0].Size != 6 || ents[1].Size != 3 {
		t.Fatalf("sizes = %d, %d", ents[0].Size, ents[1].Size)
	}
	if !ents[0].LastAccess.After(ents[1].LastAccess) {
		t.Fatalf("atime order: %v vs %v", ents[0].LastAccess, ents[1].LastAccess)
	}
	// A Get refreshes recency and last-access.
	clk.Advance(time.Minute)
	if _, ok := s.Get("aaa"); !ok {
		t.Fatal("Get aaa")
	}
	ents = s.Entries()
	if ents[0].Key != "aaa" {
		t.Fatalf("Get did not refresh recency: %s first", ents[0].Key)
	}
	if got := ents[0].LastAccess; !got.Equal(time.Unix(1000, 0).Add(2 * time.Minute)) {
		t.Fatalf("LastAccess = %v", got)
	}
}

func TestDeleteRemovesBlob(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	s.Put("abc", []byte("v"))
	s.Flush()
	if !s.Delete("abc") {
		t.Fatal("Delete of indexed key reported false")
	}
	if s.Delete("abc") {
		t.Fatal("second Delete reported true")
	}
	if _, ok := s.Get("abc"); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if _, err := os.Stat(filepath.Join(dir, "abc.blob")); !os.IsNotExist(err) {
		t.Fatalf("blob file survived Delete: %v", err)
	}
	st := s.Stats()
	if st.Deletes != 1 || st.Blobs != 0 || st.Bytes != 0 {
		t.Errorf("stats after delete = %+v", st)
	}
	// Deleted keys can be re-written (content addressing makes the
	// identical bytes land again).
	s.Put("abc", []byte("v"))
	s.Flush()
	if got, ok := s.Get("abc"); !ok || string(got) != "v" {
		t.Fatalf("re-put after delete: %q, %v", got, ok)
	}
}

func TestDegradedReasonSurfaced(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS())
	s := openStore(t, Config{Dir: dir, FS: inj})
	if s.Stats().LastError != "" {
		t.Fatalf("LastError before any failure: %q", s.Stats().LastError)
	}
	inj.SetRules(fault.Rule{Op: fault.OpCreate, Every: 1, Err: syscall.ENOSPC})
	s.Put("k", []byte("v"))
	s.Flush()
	if s.State() != StateDegraded {
		t.Fatal("ENOSPC write did not degrade the store")
	}
	reason := s.Stats().LastError
	if !strings.Contains(reason, "write failed") || !strings.Contains(reason, "no space") {
		t.Fatalf("LastError = %q", reason)
	}
}
