// Package codelayout is a reproduction of "Code Layout Optimization for
// Defensiveness and Politeness in Shared Cache" (Li, Luo, Ding, Hu, Ye —
// ICPP 2014) as a self-contained Go library.
//
// The library implements the paper's whole system: a whole-program IR
// and interpreter standing in for LLVM bytecode, the w-window reference
// affinity hierarchy and the temporal relationship graph (TRG) locality
// models, global function reordering and inter-procedural basic-block
// reordering, footprint theory (the defensiveness/politeness equations),
// a set-associative instruction-cache simulator, an SMT core timing
// model with PAPI-style counters, a synthetic SPEC-like benchmark
// generator, and an experiment harness that regenerates every table and
// figure of the paper's evaluation.
//
// This root package is the public facade: it re-exports the pipeline
// types and entry points so that a user can go from a program to an
// optimized layout and a measured result without touching internal
// packages:
//
//	prog, _ := codelayout.LoadBenchmark("445.gobmk")
//	prof, _ := codelayout.ProfileProgram(prog, codelayout.TrainSeed)
//	layout, report, _ := codelayout.BBAffinity().Optimize(prof)
//	fmt.Println(report.Optimizer, layout.TotalBytes)
//
// For measurement, the experiment workspace caches programs, profiles
// and layouts:
//
//	w := codelayout.NewWorkspace()
//	t2, _ := codelayout.Table2(w)
//	fmt.Println(t2)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every table and figure.
package codelayout

import (
	"codelayout/internal/core"
	"codelayout/internal/experiments"
	"codelayout/internal/footprint"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/progen"
	"codelayout/internal/trace"
)

// Program is the whole-program intermediate representation.
type Program = ir.Program

// Builder constructs programs; see NewProgramBuilder.
type Builder = ir.Builder

// NewProgramBuilder starts a new program with the given number of
// global registers.
func NewProgramBuilder(name string, numGlobals int) *Builder {
	return ir.NewBuilder(name, numGlobals)
}

// Cond is a branch condition for the program builder.
type Cond = ir.Cond

// CondAlways is a condition that always holds.
func CondAlways() Cond { return ir.Always{} }

// CondProb holds with the given probability, drawn from the program's
// input seed.
func CondProb(p float64) Cond { return ir.Prob{P: p} }

// CondGlobalEq holds when global register reg equals val.
func CondGlobalEq(reg, val int32) Cond { return ir.GlobalEq{Reg: reg, Val: val} }

// CondGlobalLT holds when global register reg is less than val.
func CondGlobalLT(reg, val int32) Cond { return ir.GlobalLT{Reg: reg, Val: val} }

// Trace is a code-symbol occurrence sequence (basic blocks or
// functions).
type Trace = trace.Trace

// Layout maps every basic block to an address; it is the output of the
// optimizers.
type Layout = layout.Layout

// Optimizer is one of the paper's four code-layout optimizers.
type Optimizer = core.Optimizer

// Profile is a training run of a program.
type Profile = core.Profile

// Report summarizes one optimization.
type Report = core.Report

// Input seeds: profiling uses TrainSeed (the paper's test input),
// measurement uses EvalSeed (the reference input).
const (
	TrainSeed = core.TrainSeed
	EvalSeed  = core.EvalSeed
)

// The four optimizers evaluated in the paper.
func FuncAffinity() Optimizer { return core.FuncAffinity() }
func BBAffinity() Optimizer   { return core.BBAffinity() }
func FuncTRG() Optimizer      { return core.FuncTRG() }
func BBTRG() Optimizer        { return core.BBTRG() }

// AllOptimizers returns the four optimizers in the paper's order.
func AllOptimizers() []Optimizer { return core.AllOptimizers() }

// Comparison baselines from the related-work tradition: Pettis-Hansen
// call-graph placement, the Conflict Miss Graph, and intra-procedural
// basic-block reordering.
func FuncCallGraph() Optimizer   { return core.FuncCallGraph() }
func FuncCMG() Optimizer         { return core.FuncCMG() }
func BBAffinityIntra() Optimizer { return core.BBAffinityIntra() }

// FuncSearch is the Petrank-Rawitz-wall reference point (§III-D):
// local search over function orders against the TRG-weighted conflict
// cost, seeded from the affinity order.
func FuncSearch() Optimizer { return core.FuncSearch() }

// AllWithBaselines returns the paper optimizers plus the baselines.
func AllWithBaselines() []Optimizer { return core.AllWithBaselines() }

// Comparison runs the extension experiment: paper optimizers vs the
// related-work baselines; names nil means the full main suite.
func Comparison(w *Workspace, names []string) (experiments.ComparisonResult, error) {
	return experiments.Comparison(w, names)
}

// ProfileProgram instruments and runs a program on the given input
// seed.
func ProfileProgram(p *Program, seed int64) (*Profile, error) {
	return core.ProfileProgram(p, seed)
}

// OriginalLayout returns the unoptimized baseline layout.
func OriginalLayout(p *Program) *Layout { return layout.Original(p) }

// BenchmarkSpec parameterizes a synthetic benchmark program.
type BenchmarkSpec = progen.Spec

// LoadBenchmark generates a named program of the synthetic SPEC-like
// suite (e.g. "445.gobmk"); see MainSuiteNames and ScreeningSuite.
func LoadBenchmark(name string) (*Program, error) { return core.LoadProgram(name) }

// GenerateBenchmark builds a program from a custom spec.
func GenerateBenchmark(s BenchmarkSpec) (*Program, error) { return progen.Generate(s) }

// MainSuiteNames lists the 8 Table I benchmarks.
var MainSuiteNames = progen.MainSuiteNames

// ScreeningSuiteSpecs returns the 29 Figure 4 benchmark specs.
func ScreeningSuiteSpecs() []BenchmarkSpec { return progen.ScreeningSuite() }

// Workspace caches generated programs, profiles and layouts for the
// experiment drivers.
type Workspace = experiments.Workspace

// Bench is one program inside a workspace.
type Bench = experiments.Bench

// NewWorkspace creates an empty experiment workspace.
func NewWorkspace() *Workspace { return experiments.NewWorkspace() }

// Experiment drivers — one per table/figure of the paper (§III). Each
// result has a String() rendering; see also cmd/benchtables.
func IntroTable(w *Workspace) (experiments.IntroResult, error) { return experiments.IntroTable(w) }
func Table1(w *Workspace) (experiments.Table1Result, error)    { return experiments.Table1(w) }
func Figure1() experiments.Figure1Result                       { return experiments.Figure1() }
func Figure2() experiments.Figure2Result                       { return experiments.Figure2() }
func Figure3() (experiments.Figure3Result, error)              { return experiments.Figure3() }
func Figure4(w *Workspace) (experiments.Figure4Result, error)  { return experiments.Figure4(w) }
func Figure5(w *Workspace) (experiments.Figure5Result, error)  { return experiments.Figure5(w) }
func Table2(w *Workspace) (experiments.Table2Result, error)    { return experiments.Table2(w) }
func Figure6(w *Workspace) (experiments.Figure6Result, error)  { return experiments.Figure6(w) }
func Figure7(w *Workspace) (experiments.Figure7Result, error)  { return experiments.Figure7(w) }

// OptOpt runs the §III-F defensiveness+politeness study on a Table II
// result.
func OptOpt(w *Workspace, t2 experiments.Table2Result) (experiments.OptOptResult, error) {
	return experiments.OptOpt(w, t2)
}

// FootprintCurve is the all-window average footprint FP(w) of a code
// trace — the quantity behind the paper's Eq 1/2 (§II-A).
type FootprintCurve = footprint.Curve

// SharingReport quantifies locality, defensiveness and politeness for
// an optimization, per the benefit classes of §II-A.
type SharingReport = footprint.SharingReport

// NewFootprintCurve computes the footprint curve of a symbol trace;
// weights (e.g. code-block byte sizes) may be nil for unit footprints.
func NewFootprintCurve(syms []int32, weights []int32) *FootprintCurve {
	return footprint.NewCurve(syms, weights)
}

// PredictCorunMiss evaluates Eq 1/2: the predicted miss ratio of self
// sharing a cache of the given capacity with peer.
func PredictCorunMiss(self, peer *FootprintCurve, capacity float64) float64 {
	return footprint.CorunMissRatio(self, peer, capacity)
}

// AnalyzeSharing computes the SharingReport of an optimization that
// changes a program's footprint curve from base to opt against a peer.
func AnalyzeSharing(base, opt, peer *FootprintCurve, capacity float64) SharingReport {
	return footprint.Analyze(base, opt, peer, capacity)
}
