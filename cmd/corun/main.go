// Command corun measures a shared-cache co-run pair the way the paper's
// co-run experiments do: the primary program runs to completion on one
// hyper-thread while the peer wraps on the other, sharing the L1
// instruction cache. It reports the primary's miss ratio and cycles for
// the baseline pairing, for an optimized primary (defensiveness), and
// the peer's miss ratios (politeness).
//
// Usage:
//
//	corun -primary 458.sjeng -peer 403.gcc -opt bb-affinity
package main

import (
	"flag"
	"fmt"
	"log"

	"codelayout/internal/experiments"
	"codelayout/internal/profiling"
	"codelayout/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("corun: ")
	primaryName := flag.String("primary", "458.sjeng", "program being measured")
	peerName := flag.String("peer", "403.gcc", "co-running peer (wraps)")
	optName := flag.String("opt", "bb-affinity", "optimizer applied to the primary")
	workers := flag.Int("workers", 0, "analysis concurrency: 0 = all cores, 1 = serial")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	w := experiments.NewWorkspace()
	w.SetWorkers(*workers)
	primary, err := w.Bench(*primaryName)
	if err != nil {
		log.Fatal(err)
	}
	peer, err := w.Bench(*peerName)
	if err != nil {
		log.Fatal(err)
	}

	solo, err := primary.HWSolo(experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	base, err := experiments.HWCorunTimed(primary, experiments.Baseline, peer, experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := experiments.HWCorunTimed(primary, *optName, peer, experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s co-running with %s (peer wraps)\n\n", *primaryName, *peerName)
	t := &stats.Table{Header: []string{"configuration", "primary miss", "primary cycles", "peer miss"}}
	t.Add("solo (no peer)", stats.Pct(solo.Counters.ICacheMissRatio()),
		fmt.Sprintf("%d", solo.Thread.Cycles), "—")
	t.Add("baseline + baseline", stats.Pct(base.Counters.ICacheMissRatio()),
		fmt.Sprintf("%d", base.Primary.Cycles), stats.Pct(base.Peer.L1I.MissRatio()))
	t.Add(*optName+" + baseline", stats.Pct(opt.Counters.ICacheMissRatio()),
		fmt.Sprintf("%d", opt.Primary.Cycles), stats.Pct(opt.Peer.L1I.MissRatio()))
	fmt.Print(t.String())

	fmt.Printf("\nco-run slowdown over solo:    %s\n",
		stats.SignedPct(float64(base.Primary.Cycles)/float64(solo.Thread.Cycles)-1))
	fmt.Printf("defensiveness (self speedup): %s\n",
		stats.SignedPct(float64(base.Primary.Cycles)/float64(opt.Primary.Cycles)-1))
	fmt.Printf("politeness (peer miss red.):  %s\n",
		stats.Pct(stats.Reduction(base.Peer.L1I.MissRatio(), opt.Peer.L1I.MissRatio())))
}
