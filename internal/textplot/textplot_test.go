package textplot

import (
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	c := &Chart{Title: "misses", Width: 10, Format: "%.1f"}
	c.Add("a", 10)
	c.Add("bb", 5)
	c.Add("ccc", 0)
	out := c.String()
	if !strings.HasPrefix(out, "misses\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if strings.Count(lines[2], "#") != 5 {
		t.Errorf("half bar wrong:\n%s", out)
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar should be empty:\n%s", out)
	}
}

func TestChartBaseline(t *testing.T) {
	c := &Chart{Baseline: 1, Width: 10}
	c.Add("faster", 1.10)
	c.Add("slower", 0.95)
	out := c.String()
	if !strings.Contains(out, "#") {
		t.Errorf("above-baseline bar missing:\n%s", out)
	}
	if !strings.Contains(out, "<") {
		t.Errorf("below-baseline marker missing:\n%s", out)
	}
}

func TestChartDefaults(t *testing.T) {
	c := &Chart{}
	c.Add("x", 1)
	out := c.String()
	if !strings.Contains(out, "1.00") {
		t.Errorf("default format not applied:\n%s", out)
	}
}

func TestMatrix(t *testing.T) {
	m := Matrix{
		Title:  "interference",
		Labels: []string{"a", "bb"},
		Cells:  [][]float64{{0, 12.5}, {12.5, 0}},
		Format: "%.1f",
	}
	out := m.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || lines[0] != "interference" {
		t.Fatalf("unexpected output:\n%s", out)
	}
	for _, want := range []string{"a", "bb", "12.5", "0.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Header and rows line up: every line is the same width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) != w {
			t.Errorf("ragged columns:\n%s", out)
		}
	}
}

func TestMatrixMissingLabels(t *testing.T) {
	m := Matrix{Cells: [][]float64{{0, 1}, {1, 0}}}
	out := m.String()
	if !strings.Contains(out, "#0") || !strings.Contains(out, "#1") {
		t.Errorf("fallback labels missing:\n%s", out)
	}
	empty := Matrix{}
	if empty.String() != "\n" {
		t.Errorf("empty matrix should render a bare header line, got %q", empty.String())
	}
}

func TestWaterfallLayout(t *testing.T) {
	w := Waterfall{Title: "trace", Width: 20, Format: "%.0fms"}
	w.Add("queue.wait", 0, 5)
	w.Add("optimize", 5, 15)
	w.Add("layout.emit", 15, 5)
	out := w.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || lines[0] != "trace" {
		t.Fatalf("unexpected output:\n%s", out)
	}
	// Bars are positioned on a shared axis: optimize starts where
	// queue.wait ends, and layout.emit occupies the final quarter.
	if !strings.Contains(lines[1], "|#####               |") {
		t.Errorf("queue.wait bar misplaced: %q", lines[1])
	}
	if !strings.Contains(lines[2], "|     ###############|") {
		t.Errorf("optimize bar misplaced: %q", lines[2])
	}
	if !strings.Contains(lines[3], "|               #####|") {
		t.Errorf("layout.emit bar misplaced: %q", lines[3])
	}
	if !strings.Contains(lines[2], "5ms +15ms") {
		t.Errorf("optimize annotation missing: %q", lines[2])
	}
}

func TestWaterfallInProgressAndTiny(t *testing.T) {
	w := Waterfall{Width: 10}
	w.Add("done", 0, 100)
	w.Add("tiny", 50, 0.01) // sub-cell spans stay visible
	w.Add("running", 60, -1)
	out := w.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Errorf("tiny span invisible: %q", lines[1])
	}
	if !strings.Contains(lines[2], ">>>>") || !strings.Contains(lines[2], "+?") {
		t.Errorf("in-progress span not open-ended: %q", lines[2])
	}
	// Zero spans and zero totals must not divide by zero.
	empty := Waterfall{}
	_ = empty.String()
	zero := Waterfall{}
	zero.Add("a", 0, 0)
	if !strings.Contains(zero.String(), "#") {
		t.Error("zero-duration-only waterfall lost its bar")
	}
}
