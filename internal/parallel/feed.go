package parallel

import (
	"context"
	"sync"
)

// FeedPool runs tasks that arrive over time on a bounded set of
// workers — the streaming counterpart of ForEachCtx, for callers that
// discover their work items incrementally (analysis shards cut from a
// trace as it uploads) instead of holding an indexed collection up
// front.
//
// Semantics mirror ForEachCtx so the Workers=1-vs-N determinism oracle
// extends to streamed dispatch:
//
//   - workers == 1 runs every task inline inside Submit, in submission
//     order — the serial reference path.
//   - With more workers, Submit hands the task to a worker goroutine and
//     blocks while all workers are busy and the hand-off queue is full,
//     so the number of in-flight tasks (queued + executing) never
//     exceeds 2×workers. That backpressure is what bounds the memory a
//     streaming producer can pin.
//   - The error reported by Wait is the one from the earliest-submitted
//     failing task, regardless of completion order. After any task
//     fails (or ctx is canceled), Submit drops subsequent tasks and
//     returns the failure so the producer can stop early.
type FeedPool struct {
	workers int
	ctx     context.Context

	tasks chan feedTask
	wg    sync.WaitGroup

	mu       sync.Mutex
	next     int   // submission index of the next task
	errIndex int   // submission index of err, valid when err != nil
	err      error // earliest-submitted failure (or ctx error)
}

type feedTask struct {
	index int
	run   func(context.Context) error
}

// NewFeedPool starts a pool of Workers(workers) workers bound to ctx.
// The caller must call Wait (or Close) exactly once when done
// submitting, even after a Submit error.
func NewFeedPool(ctx context.Context, workers int) *FeedPool {
	w := Workers(workers)
	p := &FeedPool{workers: w, ctx: ctx}
	if w <= 1 {
		return p
	}
	p.tasks = make(chan feedTask, w)
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go p.worker()
	}
	return p
}

func (p *FeedPool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		if p.failed() {
			continue // drain without running; the pool is already sunk
		}
		if err := p.ctx.Err(); err != nil {
			p.record(t.index, err)
			continue
		}
		if err := t.run(p.ctx); err != nil {
			p.record(t.index, err)
		}
	}
}

// record keeps the error of the earliest-submitted failing task, the
// same deterministic choice ForEachCtx makes.
func (p *FeedPool) record(index int, err error) {
	p.mu.Lock()
	if p.err == nil || index < p.errIndex {
		p.err, p.errIndex = err, index
	}
	p.mu.Unlock()
}

func (p *FeedPool) failed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err != nil
}

func (p *FeedPool) currentErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Submit schedules one task. It blocks while the pool's in-flight bound
// is reached. A non-nil return means the task was NOT scheduled: a
// previous task already failed (that error is returned) or ctx is done.
func (p *FeedPool) Submit(task func(context.Context) error) error {
	if err := p.currentErr(); err != nil {
		return err
	}
	if err := p.ctx.Err(); err != nil {
		p.mu.Lock()
		if p.err == nil {
			p.err, p.errIndex = err, p.next
		}
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	index := p.next
	p.next++
	p.mu.Unlock()
	if p.tasks == nil {
		// Serial reference path: run inline, in submission order.
		if err := task(p.ctx); err != nil {
			p.record(index, err)
			return err
		}
		return nil
	}
	select {
	case p.tasks <- feedTask{index: index, run: task}:
		return nil
	case <-p.ctx.Done():
		err := p.ctx.Err()
		p.record(index, err)
		return err
	}
}

// Wait blocks until every submitted task has finished and returns the
// earliest-submitted task's error, if any. The pool cannot be reused
// after Wait.
func (p *FeedPool) Wait() error {
	if p.tasks != nil {
		close(p.tasks)
		p.wg.Wait()
		p.tasks = nil
	}
	return p.currentErr()
}
