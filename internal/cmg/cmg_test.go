package cmg

import (
	"math/rand"
	"testing"

	"codelayout/internal/trace"
	"codelayout/internal/trg"
)

func TestOneShotInterleavingCarriesNoConflict(t *testing.T) {
	// A X A with X executed once: the TRG counts the interleaving, but
	// the worst-case conflict-miss bound is zero misses beyond X's cold
	// miss — the CMG ignores it.
	syms := []int32{0, 7, 0}
	tg := trg.Build(trace.New(syms), 0)
	cg := Build(trace.New(syms), 0)
	if tg.Weight(0, 7) != 1 {
		t.Errorf("TRG weight = %d, want 1", tg.Weight(0, 7))
	}
	if cg.Weight(0, 7) != 0 {
		t.Errorf("CMG weight = %d, want 0 (one-shot interleaving)", cg.Weight(0, 7))
	}
}

func TestDirectionChangeCounting(t *testing.T) {
	// A X A X: one completed alternation — 2 worst-case misses.
	g := Build(trace.New([]int32{0, 7, 0, 7}), 0)
	if w := g.Weight(0, 7); w != 2 {
		t.Errorf("Weight = %d, want 2", w)
	}
	// A X A X A: two completed alternations.
	g = Build(trace.New([]int32{0, 7, 0, 7, 0}), 0)
	if w := g.Weight(0, 7); w != 4 {
		t.Errorf("Weight = %d, want 4", w)
	}
	// 0 7 0 2 0 2 0: the (0,7) pair never alternates back; the (0,2)
	// pair completes two alternations.
	g = Build(trace.New([]int32{0, 7, 0, 2, 0, 2, 0}), 0)
	if w := g.Weight(0, 7); w != 0 {
		t.Errorf("one-sided weight = %d, want 0", w)
	}
	if w := g.Weight(0, 2); w != 4 {
		t.Errorf("alternating weight = %d, want 4", w)
	}
}

func TestWindowBound(t *testing.T) {
	// 0 and 3 alternate twice; the blocks in between ensure the window
	// bound matters.
	syms := []int32{0, 1, 3, 2, 0, 4, 3, 5, 0}
	unbounded := Build(trace.New(syms), 0)
	if unbounded.Weight(0, 3) == 0 {
		t.Error("unbounded CMG missed the alternation")
	}
	bounded := Build(trace.New(syms), 3)
	if bounded.Weight(0, 3) != 0 {
		t.Errorf("bounded CMG counted outside the window: %d", bounded.Weight(0, 3))
	}
}

func TestSequenceIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	syms := make([]int32, 4000)
	for i := range syms {
		syms[i] = int32(rng.Intn(40))
	}
	seq := Sequence(trace.New(syms), trg.DefaultParams(512))
	seen := make(map[int32]bool)
	for _, s := range seq {
		if seen[s] {
			t.Fatalf("duplicate %d", s)
		}
		seen[s] = true
	}
	if len(seq) != 40 {
		t.Errorf("sequence covers %d blocks, want 40", len(seq))
	}
}

func TestEmptyTrace(t *testing.T) {
	g := Build(trace.New(nil), 0)
	if g.NumEdges() != 0 || len(g.Nodes()) != 0 {
		t.Error("empty trace produced a non-empty graph")
	}
}
