package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/obs"
	"codelayout/internal/stats"
	"codelayout/internal/trace"
)

// Streamed ingest: when Config.StreamWindow > 0 and the optimizer
// supports feed mode (core.Optimizer.FeedSupported), POST /v1/jobs no
// longer buffers the decoded trace before analysis. The request
// handler becomes the producer — it decodes the upload into fixed-size
// chunks and tees the raw container bytes to a disk spool — while a
// pool worker consumes the chunks into the optimizer's feed as they
// arrive. Decoded memory is bounded by the ring below; when the
// analysis falls behind, the producer blocks waiting for a recycled
// buffer and TCP backpressure stalls the client. After end-of-stream
// the worker finishes the analysis and replays the spool once through
// two streaming cache simulations (original and optimized layouts) for
// the before/after miss ratios, so no stage ever holds the whole
// decoded trace.
//
// PR 1's deterministic sharded merge is what makes this safe: the feed
// cuts shards at chunk arrival boundaries, yet the merged result is
// byte-identical to the buffered pipeline's, so streamed and buffered
// submissions of the same trace produce the same content-addressed
// result.

const (
	// streamChunkRefs is the decode granularity of the streamed path:
	// one ring buffer holds this many block references (32 KiB).
	streamChunkRefs  = 8192
	streamChunkBytes = 4 * streamChunkRefs
	// minStreamBuffers is the ring floor — producer-held, in-channel,
	// and consumer-held buffers — below which the pipeline cannot
	// overlap at all.
	minStreamBuffers = 3
	// streamRetainMaxBytes caps the spooled traces retained for later
	// corun/schedule replay; larger streamed uploads are analyzed but
	// not kept (re-buffering them would defeat the bounded ingest).
	streamRetainMaxBytes = 16 << 20
)

// streamRing is the bounded chunk pipe between one submission's
// producer (the request handler decoding the upload) and consumer (the
// pool worker feeding the optimizer). Buffers are allocated lazily up
// to the window bound and recycled through free.
//
// Shutdown protocol: only the producer closes chunks (always, success
// or failure, via closeChunks); only the consumer closes done (at most
// once, via fail). The consumer always drains chunks to the closure,
// so neither side can strand the other.
type streamRing struct {
	chunks chan []int32
	free   chan []int32
	done   chan struct{}

	maxBufs   int
	allocated int // producer-side only
	released  bool

	mu          sync.Mutex
	err         error
	sealed      bool
	traceDigest string
	traceBytes  int64
	refs        int
}

func newStreamRing(window int64) *streamRing {
	maxBufs := int(window / streamChunkBytes)
	if maxBufs < minStreamBuffers {
		maxBufs = minStreamBuffers
	}
	return &streamRing{
		chunks:  make(chan []int32, maxBufs),
		free:    make(chan []int32, maxBufs),
		done:    make(chan struct{}),
		maxBufs: maxBufs,
	}
}

// getBuf returns an empty full-capacity buffer: a recycled one when
// available, a fresh allocation while under the window bound, else it
// blocks until the consumer recycles — the memory backpressure that
// ultimately stalls the upload. ok is false when the consumer aborted.
func (rg *streamRing) getBuf(s *Server) ([]int32, bool) {
	select {
	case b := <-rg.free:
		return b[:streamChunkRefs], true
	default:
	}
	if rg.allocated < rg.maxBufs {
		rg.allocated++
		s.addStreamBuffered(streamChunkBytes)
		return make([]int32, streamChunkRefs), true
	}
	select {
	case b := <-rg.free:
		return b[:streamChunkRefs], true
	case <-rg.done:
		return nil, false
	}
}

// send hands a filled buffer to the consumer. The channel's capacity
// equals the buffer bound, so this never blocks on a live consumer;
// the done arm covers a consumer that aborted mid-drain.
func (rg *streamRing) send(buf []int32) bool {
	select {
	case rg.chunks <- buf:
		return true
	case <-rg.done:
		return false
	}
}

// recycle returns a consumed buffer to the producer.
func (rg *streamRing) recycle(buf []int32) {
	select {
	case rg.free <- buf:
	default:
	}
}

// fail aborts the stream from the consumer side (feed error, job
// canceled before running): the producer unblocks and stops decoding.
// Call at most once per ring.
func (rg *streamRing) fail(err error) {
	rg.mu.Lock()
	if rg.err == nil {
		rg.err = err
	}
	rg.mu.Unlock()
	close(rg.done)
}

// seal records end-of-stream success: the upload's digest, byte count,
// and reference count, published to the consumer by the chunks close
// that follows.
func (rg *streamRing) seal(digest string, nbytes int64, refs int) {
	rg.mu.Lock()
	rg.sealed = true
	rg.traceDigest = digest
	rg.traceBytes = nbytes
	rg.refs = refs
	rg.mu.Unlock()
}

// closeChunks ends production. A nil perr means seal already ran; a
// non-nil one poisons the stream so the consumer aborts its feed.
func (rg *streamRing) closeChunks(perr error) {
	rg.mu.Lock()
	if perr != nil && rg.err == nil {
		rg.err = perr
	}
	rg.mu.Unlock()
	close(rg.chunks)
}

func (rg *streamRing) abortErr() error {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	if rg.err != nil {
		return rg.err
	}
	return errors.New("stream aborted")
}

// result returns the sealed end-of-stream record; valid after chunks
// closes.
func (rg *streamRing) result() (sealed bool, digest string, nbytes int64, refs int, err error) {
	rg.mu.Lock()
	defer rg.mu.Unlock()
	return rg.sealed, rg.traceDigest, rg.traceBytes, rg.refs, rg.err
}

// release returns the ring's buffer accounting to the gauge. Called by
// the producer after closeChunks; the consumer only ever holds one
// buffer transiently, so by then the count is stable.
func (rg *streamRing) release(s *Server) {
	if rg.released {
		return
	}
	rg.released = true
	s.streamBytes.Add(-int64(rg.allocated) * streamChunkBytes)
}

// addStreamBuffered bumps the in-flight gauge and its high-water mark.
func (s *Server) addStreamBuffered(n int64) {
	v := s.streamBytes.Add(n)
	for {
		p := s.streamPeak.Load()
		if v <= p || s.streamPeak.CompareAndSwap(p, v) {
			return
		}
	}
}

// streamRequest carries one streamed submission to its pool worker.
type streamRequest struct {
	sub       *submission
	spoolPath string
	deadline  time.Time
	// ctx is the job's own lifetime context (DELETE cancellation), as
	// in jobRequest.
	ctx context.Context
}

// spoolDir is where streamed submissions spool the raw upload; beside
// the upload sessions when configured, the system temp dir otherwise.
func (s *Server) spoolDir() string {
	if s.uploads != nil {
		return s.uploads.Dir()
	}
	return ""
}

// streamSubmit is the feed-mode body of POST /v1/jobs: spool to a temp
// file while decoding into the ring, analysis already running.
func (s *Server) streamSubmit(ctx context.Context, w http.ResponseWriter, body io.Reader, sub *submission) {
	spool, err := os.CreateTemp(s.spoolDir(), "stream-*.cltr")
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("creating stream spool: %w", err))
		return
	}
	s.streamIngest(ctx, w, body, spool, spool.Name(), sub)
}

// streamIngest runs one streamed submission end to end from the
// handler goroutine: queue the consumer first (so analysis can start
// with the first chunk), then produce until end-of-stream, then answer.
// body is the CLTR byte source; tee, when non-nil, receives a copy of
// the bytes at spoolPath (the finalize path passes tee nil because the
// spool already exists). On acceptance the consumer owns spoolPath.
func (s *Server) streamIngest(ctx context.Context, w http.ResponseWriter, body io.Reader, tee *os.File, spoolPath string, sub *submission) {
	rg := newStreamRing(s.cfg.StreamWindow)
	jobCtx, jobCancel := context.WithCancel(context.Background())
	req := &streamRequest{
		sub:       sub,
		spoolPath: spoolPath,
		deadline:  time.Now().Add(s.cfg.JobTimeout),
		ctx:       jobCtx,
	}
	j := &Job{
		id:       s.newJobID(),
		status:   StatusQueued,
		created:  time.Now(),
		cancel:   jobCancel,
		traceID:  sub.traceID,
		rec:      sub.rec,
		progName: sub.progName,
		optName:  sub.optName,
	}
	j.logger = sub.logger.With("job", j.id)
	s.storeJob(j)
	accepted := s.pool.TrySubmit(func(poolCtx context.Context) {
		s.runStreamJob(poolCtx, j, req, rg)
	})
	if !accepted {
		s.dropJob(j.id)
		jobCancel()
		if tee != nil {
			tee.Close()
		}
		os.Remove(spoolPath)
		s.metrics.rejected.Inc()
		sub.logger.Warn("job rejected: queue full", "job", j.id)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, errors.New("job queue full"))
		return
	}
	s.metrics.accepted.Inc()
	s.metrics.streamJobs.Inc()

	perr := s.streamProduce(ctx, body, tee, rg)
	if tee != nil {
		if cerr := tee.Close(); perr == nil && cerr != nil {
			perr = fmt.Errorf("closing stream spool: %w", cerr)
		}
	}
	if perr == nil {
		// Publish the seal before the close so the consumer observes it.
		rg.closeChunks(nil)
	} else {
		rg.closeChunks(perr)
	}
	rg.release(s)
	if perr != nil {
		sub.logger.Warn("streamed upload failed", "job", j.id, "error", perr)
		httpError(w, badBodyStatus(perr), perr)
		return
	}
	_, digest, nbytes, refs, _ := rg.result()
	j.logger.Info("job accepted",
		"prog", sub.progName, "opt", sub.optName, "prune", sub.pruneTopN,
		"trace_bytes", nbytes, "trace_refs", refs, "trace_digest", digest,
		"streamed", true)
	writeJSON(w, http.StatusAccepted, j.view())
}

// streamProduce decodes the upload into ring chunks under a
// stream.decode span, fingerprinting every byte and teeing the raw
// container to the spool. On success the ring is sealed with the
// digest; the caller closes the chunk channel either way.
func (s *Server) streamProduce(ctx context.Context, body io.Reader, tee *os.File, rg *streamRing) error {
	sp := obs.StartSpan(ctx, "stream.decode")
	defer sp.End()
	hr := trace.NewHashingReader(body)
	var src io.Reader = hr
	if tee != nil {
		src = io.TeeReader(hr, tee)
	}
	dec, err := trace.NewDecoder(src)
	if err != nil {
		return err
	}
	if dec.Len() == 0 {
		return errors.New("trace is empty")
	}
	refs := 0
	for {
		buf, ok := rg.getBuf(s)
		if !ok {
			return rg.abortErr()
		}
		n, err := dec.NextChunk(buf)
		if n > 0 {
			refs += n
			if !rg.send(buf[:n]) {
				return rg.abortErr()
			}
		} else {
			rg.recycle(buf)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	// Drain trailing bytes so the digest covers the whole upload,
	// matching the buffered decodeUpload.
	if _, err := io.Copy(io.Discard, hr); err != nil {
		return err
	}
	sp.SetAttr("bytes", hr.BytesRead())
	sp.SetAttr("refs", int64(refs))
	rg.seal(hr.Sum(), hr.BytesRead(), refs)
	return nil
}

// runStreamJob is the pool task behind a streamed submission: consume
// the ring into the optimizer's feed, finish, simulate, publish.
func (s *Server) runStreamJob(poolCtx context.Context, j *Job, req *streamRequest, rg *streamRing) {
	defer os.Remove(req.spoolPath)
	ctx, cleanup, ok := s.beginJob(poolCtx, j, req.deadline, req.ctx)
	if !ok {
		rg.fail(errors.New("job canceled before running"))
		for range rg.chunks {
		}
		return
	}
	defer cleanup()
	start := time.Now()
	sp := obs.StartSpan(ctx, "optimize")
	res, cached, err := s.streamOptimize(ctx, j, req, rg)
	sp.End()
	if err != nil {
		s.failOrCancel(j, err)
		return
	}
	if cached {
		j.markCached()
		s.metrics.cacheHits.Inc()
		j.complete(res)
		s.finish(j)
		return
	}
	elapsed := time.Since(start)
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	s.cache.put(ctx, res)
	j.complete(res)
	s.metrics.completed.Inc()
	s.metrics.latency.With(req.sub.optName).Observe(res.ElapsedMS)
	s.finish(j)
}

// streamOptimize is the consumer half of a streamed submission: feed
// chunks into the analysis as they decode, then finish and replay the
// spool for the before/after miss simulation. It always drains the
// chunk channel to closure, recycling every buffer, so the producer
// can never wedge on a full ring.
func (s *Server) streamOptimize(ctx context.Context, j *Job, req *streamRequest, rg *streamRing) (res *Result, cached bool, err error) {
	sub := req.sub
	opt := sub.opt
	opt.PruneTopN = sub.pruneTopN
	opt.Workers = s.cfg.OptWorkers
	opt.Arena = s.getArena()
	defer s.putArena(opt.Arena)

	feed, err := opt.NewFeed(ctx, sub.prog)
	if err != nil {
		// Unreachable behind the canStream gate; drain defensively.
		rg.fail(err)
		for range rg.chunks {
		}
		return nil, false, err
	}
	fsp := obs.StartSpan(ctx, "stream.feed")
	var feedErr error
	chunks := 0
	for buf := range rg.chunks {
		if feedErr == nil {
			chunks++
			s.metrics.streamChunks.Inc()
			if feedErr = feed.Feed(ctx, buf); feedErr != nil {
				rg.fail(feedErr) // unblock the producer
			}
		}
		rg.recycle(buf)
	}
	fsp.SetAttr("chunks", int64(chunks))
	fsp.End()
	if feedErr != nil {
		feed.Abort()
		return nil, false, feedErr
	}
	sealed, traceDigest, traceBytes, refs, perr := rg.result()
	if !sealed {
		feed.Abort()
		if perr == nil {
			perr = errors.New("upload aborted")
		}
		return nil, false, fmt.Errorf("streamed upload failed: %w", perr)
	}
	if refs == 0 {
		feed.Abort()
		return nil, false, errors.New("trace is empty")
	}

	resultKey := resultDigest(traceDigest, sub.progName, sub.optName, sub.pruneTopN)
	j.setDigest(resultKey)
	// Content-addressed fast path, post-upload for streamed jobs: the
	// digest is only known at end-of-stream.
	if cres, ok := s.cache.get(ctx, resultKey); ok {
		feed.Abort()
		return cres, true, nil
	}

	l, rep, err := feed.Finish(ctx)
	if err != nil {
		return nil, false, err
	}
	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("job deadline exceeded after optimization: %w", err)
	}
	before, after, err := s.replaySpool(ctx, sub.prog, l, req.spoolPath)
	if err != nil {
		return nil, false, err
	}
	s.retainSpool(ctx, traceDigest, req.spoolPath, traceBytes)
	return &Result{
		Digest:        resultKey,
		TraceDigest:   traceDigest,
		Prog:          sub.progName,
		Optimizer:     sub.opt.Name(),
		Report:        rep,
		MissBefore:    before,
		MissAfter:     after,
		MissReduction: stats.Reduction(before, after),
	}, false, nil
}

// replaySpool re-decodes the spooled container once, feeding the
// original and optimized layouts' streaming cache simulations in
// lockstep — the same one-pass bounded-memory discipline as the ingest
// itself, and the same miss ratios the buffered pipeline reports.
func (s *Server) replaySpool(ctx context.Context, prog *ir.Program, l *layout.Layout, path string) (before, after float64, err error) {
	sp := obs.StartSpan(ctx, "cachesim.replay")
	defer sp.End()
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("reopening stream spool: %w", err)
	}
	defer f.Close()
	dec, err := trace.NewDecoder(f)
	if err != nil {
		return 0, 0, err
	}
	cfg := cachesim.L1IDefault
	orig := cachesim.NewSoloStream(cfg, layout.Original(prog))
	opt := cachesim.NewSoloStream(cfg, l)
	buf := make([]int32, streamChunkRefs)
	for {
		n, err := dec.NextChunk(buf)
		if n > 0 {
			orig.Feed(buf[:n])
			opt.Feed(buf[:n])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
	}
	ro, rl := orig.Finish(), opt.Finish()
	sp.SetAttr("blocks", ro.Blocks)
	return ro.Stats.MissRatio(), rl.Stats.MissRatio(), nil
}

// retainSpool keeps a streamed trace queryable by digest for the
// corun/schedule endpoints — durable tier only, and only up to a size
// cap: re-buffering an arbitrarily large spool would defeat the
// bounded-memory ingest, so huge streamed traces are analyzed but not
// retained.
func (s *Server) retainSpool(ctx context.Context, digest, path string, size int64) {
	if size > streamRetainMaxBytes {
		obs.Logger(ctx).Info("streamed trace not retained", "trace_digest", digest, "bytes", size)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	s.traces.putEncoded(ctx, digest, data)
}
