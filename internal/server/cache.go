package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// resultCache is the content-addressed result store: a completed
// optimization is keyed by the digest of everything that determined it
// — the SHA-256 of the uploaded trace bytes, the optimizer name, and
// the request parameters — so resubmitting the same profile is served
// without recomputation and `GET /v1/layouts/{digest}` is a stable
// address for a layout.
type resultCache struct {
	mu      sync.RWMutex
	results map[string]*Result
}

func newResultCache() *resultCache {
	return &resultCache{results: make(map[string]*Result)}
}

// resultDigest derives the cache key. The fields are length-prefixed by
// newline framing over hex/known-charset values, so distinct inputs
// cannot collide by concatenation.
func resultDigest(traceDigest, prog, optimizer string, pruneTopN int) string {
	h := sha256.New()
	fmt.Fprintf(h, "layoutd/v1\ntrace:%s\nprog:%s\nopt:%s\nprune:%d\n",
		traceDigest, prog, optimizer, pruneTopN)
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached result for the digest, if present.
func (c *resultCache) get(digest string) (*Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.results[digest]
	return r, ok
}

// put stores a completed result under its digest.
func (c *resultCache) put(r *Result) {
	c.mu.Lock()
	c.results[r.Digest] = r
	c.mu.Unlock()
}

// len returns the number of cached layouts.
func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.results)
}
