# Mirrors .github/workflows/ci.yml: `make ci` runs what CI runs.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke bench-json bench-json-ci smoke-serve smoke-durable smoke-schedule smoke-cluster smoke-stream smoke-chaos smoke-obs ci

# Allocation budget for the CI regression gate: the per-window affinity
# analysis (serial path) must stay under this allocs/op. The committed
# BENCH_PR3.json baseline is ~9.4k; the budget leaves headroom for Go
# version variance, not for real regressions.
BENCH_ALLOC_BUDGET ?= 12000

# Allocation budgets for the scheduling surfaces: one co-run batch
# simulation (baseline ~108 allocs/op) and one 32-program placement
# solve (baseline ~40 allocs/op). Headroom for Go version variance only.
CORUN_ALLOC_BUDGET ?= 256
SCHEDULE_ALLOC_BUDGET ?= 64

# Allocation budgets for the streaming pipeline: one chunked decode of a
# 64k-occurrence container (baseline 4 allocs/op — decoder setup only)
# and one full feed-mode analysis of a 128k-reference trace (baseline
# ~15.3k allocs/op). Headroom for Go version variance only.
STREAM_DECODE_ALLOC_BUDGET ?= 16
STREAM_FEED_ALLOC_BUDGET ?= 24000

# The anti-entropy digest-set diff runs every sweep on every node and
# reuses its caller's buffer: zero allocations, no headroom needed.
ANTIENTROPY_DIFF_ALLOC_BUDGET ?= 0

# The runtime-telemetry sampler ticks for the process lifetime; its
# sample buffer is reused so the steady state is zero allocations, but
# runtime/metrics may grow a histogram bucket slice on a fresh
# Go release — small headroom for that, none for real regressions.
RUNTIME_TICK_ALLOC_BUDGET ?= 8

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (slow: regenerates every table and figure).
bench:
	$(GO) test -run='^$$' -bench=. ./...

# One iteration of every benchmark — catches bit-rot cheaply.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Bench-regression harness: run the kernel benchmarks with -benchmem,
# write BENCH_PR10.json (ns/op, B/op, allocs/op per benchmark), and gate
# on the allocation budgets. BENCH_PR3.json (pre-streaming) and
# BENCH_PR9.json (pre-observability-plane) are earlier baselines, kept
# for comparison.
bench-json:
	sh scripts/bench_json.sh run BENCH_PR10.json
	sh scripts/bench_json.sh check BENCH_PR10.json 'BuildHierarchyWorkers/workers=1' $(BENCH_ALLOC_BUDGET)
	sh scripts/bench_json.sh check BENCH_PR10.json 'SpanStartEnd' 0
	sh scripts/bench_json.sh check BENCH_PR10.json 'RegistryCounterInc' 0
	sh scripts/bench_json.sh check BENCH_PR10.json 'RegistryHistogramObserve' 0
	sh scripts/bench_json.sh check BENCH_PR10.json 'TraceparentParse' 0
	sh scripts/bench_json.sh check BENCH_PR10.json 'TraceparentFormat' 0
	sh scripts/bench_json.sh check BENCH_PR10.json 'RuntimeSamplerTick' $(RUNTIME_TICK_ALLOC_BUDGET)
	sh scripts/bench_json.sh check BENCH_PR10.json 'CorunBatchWorkers/workers=1' $(CORUN_ALLOC_BUDGET)
	sh scripts/bench_json.sh check BENCH_PR10.json 'ScheduleSolve' $(SCHEDULE_ALLOC_BUDGET)
	sh scripts/bench_json.sh check BENCH_PR10.json 'StreamDecode' $(STREAM_DECODE_ALLOC_BUDGET)
	sh scripts/bench_json.sh check BENCH_PR10.json 'StreamFeed' $(STREAM_FEED_ALLOC_BUDGET)
	sh scripts/bench_json.sh check BENCH_PR10.json 'AntiEntropyDiff' $(ANTIENTROPY_DIFF_ALLOC_BUDGET)

# End-to-end service smoke: start layoutd, submit a recorded trace via
# layoutctl, assert a completed result and a cache hit on resubmission,
# then drain with SIGTERM.
smoke-serve:
	sh scripts/smoke_serve.sh

# Durability smoke: SIGKILL layoutd mid-run, restart on the same store
# directory, require the completed layout back from disk byte-identical;
# then run with every disk write failing and require degraded-but-alive.
smoke-durable:
	sh scripts/smoke_durable.sh

# What the CI bench-json job runs: single-iteration bench sweep into a
# scratch file (the committed BENCH_PR3.json baseline stays untouched),
# then the allocation gates.
bench-json-ci:
	BENCHTIME=1x sh scripts/bench_json.sh run $(or $(TMPDIR),/tmp)/bench-ci.json
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'BuildHierarchyWorkers/workers=1' $(BENCH_ALLOC_BUDGET)
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'ShardPairHists' 0
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'BuildShard' 0
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'SpanStartEnd' 0
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'RegistryCounterInc' 0
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'RegistryHistogramObserve' 0
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'TraceparentParse' 0
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'TraceparentFormat' 0
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'RuntimeSamplerTick' $(RUNTIME_TICK_ALLOC_BUDGET)
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'CorunBatchWorkers/workers=1' $(CORUN_ALLOC_BUDGET)
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'ScheduleSolve' $(SCHEDULE_ALLOC_BUDGET)
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'StreamDecode' $(STREAM_DECODE_ALLOC_BUDGET)
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'StreamFeed' $(STREAM_FEED_ALLOC_BUDGET)
	sh scripts/bench_json.sh check $(or $(TMPDIR),/tmp)/bench-ci.json 'AntiEntropyDiff' $(ANTIENTROPY_DIFF_ALLOC_BUDGET)

# Scheduling-service smoke: optimize a trace under two optimizers, pair
# them via /v1/corun, place {A, B, A, B} via /v1/schedule, and assert a
# symmetric matrix, a better-than-worst-case placement, and pair-cache
# reuse across both endpoints.
smoke-schedule:
	sh scripts/smoke_schedule.sh

# Cluster smoke: 3 layoutd nodes with static membership, submit to a
# non-owner and require transparent forwarding plus write-behind
# replication, SIGKILL the owner, and require survivors to serve the
# layout with zero recompute.
smoke-cluster:
	sh scripts/smoke_cluster.sh

# Streaming smoke: analyze a trace ~135x larger than the stream window
# while it uploads under a GOMEMLIMIT far below the decoded trace size,
# require digest equality with a buffered run, then resume a half-done
# chunked upload (409 offset resync included) to a cache hit.
smoke-stream:
	sh scripts/smoke_stream.sh

# Chaos smoke: a 3-node cluster under a seeded kill/restart/fault
# schedule — replication losses repaired by anti-entropy, a mid-upload
# SIGKILL resumed across the restart, a write-fault burst degrading one
# node without poisoning the others, and zero recompute throughout.
# SMOKE_SEED varies the victim and the schedule.
smoke-chaos:
	sh scripts/smoke_chaos.sh

# Observability smoke: submit through a non-owner with an injected W3C
# traceparent header and require one merged cross-node waterfall under
# the caller's trace ID; federate /v1/cluster/metrics through
# `layoutctl -top` (lint-gated), tabulate every endpoint with
# `layoutctl -health -cluster`, and require the /v1/debug/events ring to
# record a SIGKILL'd peer going down and coming back.
smoke-obs:
	sh scripts/smoke_obs.sh

ci: build vet fmt-check test race bench-smoke bench-json-ci smoke-serve smoke-durable smoke-schedule smoke-cluster smoke-stream smoke-chaos smoke-obs
