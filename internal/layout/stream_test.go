package layout

import (
	"reflect"
	"testing"
)

// TestStreamReplayerMatchesAppendLines: feeding the trace in chunks of
// any size must reproduce the buffered AppendLines fetch stream exactly,
// on both a stub-free and a stub-carrying layout (the latter exercises
// the cross-chunk stub rule and the held fall-through decision).
func TestStreamReplayerMatchesAppendLines(t *testing.T) {
	for name, l := range replayerParityLayouts(t) {
		tr := parityTrace(300, len(l.Prog.Blocks))
		want, _ := NewReplayer(l, tr, 64, false).AppendLines(nil, tr.Len())
		for _, chunk := range []int{1, 2, 7, 64, 1024} {
			r := NewStreamReplayer(l, 64)
			var got []int64
			syms := tr.Syms
			for len(syms) > 0 {
				c := chunk
				if c > len(syms) {
					c = len(syms)
				}
				got = r.Feed(got, syms[:c])
				syms = syms[c:]
			}
			got = r.Finish(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s chunk=%d: streamed fetch stream diverges from AppendLines", name, chunk)
			}
			if r.Blocks() != int64(tr.Len()) {
				t.Fatalf("%s chunk=%d: replayed %d blocks, want %d", name, chunk, r.Blocks(), tr.Len())
			}
		}
	}
}

// TestStreamReplayerEmptyFeeds: empty chunks and an empty stream are
// no-ops, matching the buffered path on an empty trace.
func TestStreamReplayerEmptyFeeds(t *testing.T) {
	p := fig3Prog(t)
	r := NewStreamReplayer(Original(p), 64)
	if lines := r.Feed(nil, nil); len(lines) != 0 {
		t.Fatalf("empty feed emitted %d lines", len(lines))
	}
	if lines := r.Finish(nil); len(lines) != 0 {
		t.Fatalf("empty finish emitted %d lines", len(lines))
	}
	if r.Blocks() != 0 {
		t.Fatalf("empty stream counted %d blocks", r.Blocks())
	}
}

// TestStreamReplayerHoldsLastOccurrence: the final occurrence of each
// chunk must not emit until its successor is known — Feed of a single
// symbol emits nothing, Finish flushes it.
func TestStreamReplayerHoldsLastOccurrence(t *testing.T) {
	l := replayerParityLayouts(t)["reversed"]
	r := NewStreamReplayer(l, 64)
	if lines := r.Feed(nil, []int32{0}); len(lines) != 0 {
		t.Fatalf("held occurrence emitted %d lines early", len(lines))
	}
	if r.Blocks() != 0 {
		t.Fatal("held occurrence counted early")
	}
	if lines := r.Finish(nil); len(lines) == 0 {
		t.Fatal("finish emitted nothing for the held occurrence")
	}
	if r.Blocks() != 1 {
		t.Fatalf("finished stream counted %d blocks, want 1", r.Blocks())
	}
}
