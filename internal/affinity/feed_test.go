package affinity

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/trace"
)

// feedInChunks drives a Feeder with the trace split at the given chunk
// size and returns the finished hierarchy.
func feedInChunks(t *testing.T, tr *trace.Trace, opt Options, chunk int) *Hierarchy {
	t.Helper()
	f := NewFeeder(context.Background(), opt)
	syms := tr.Syms
	for len(syms) > 0 {
		c := chunk
		if c > len(syms) {
			c = len(syms)
		}
		if err := f.Feed(syms[:c]); err != nil {
			t.Fatal(err)
		}
		syms = syms[c:]
	}
	h, err := f.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestFeederMatchesBuffered is the streamed-vs-buffered oracle: feeding
// a trace chunk by chunk — across shard spans small enough to force many
// arrival-cut shards — must yield a hierarchy byte-identical to the
// buffered build, at Workers=1 and Workers=N.
func TestFeederMatchesBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	traces := []*trace.Trace{
		phasedTrace(rng, 4000, 500, 12),
		phasedTrace(rng, 997, 100, 5),
		trace.New(func() []int32 { // uniform random, small alphabet
			s := make([]int32, 2000)
			for i := range s {
				s[i] = int32(rng.Intn(9))
			}
			return s
		}()),
		fig1Trace(),
		trace.New([]int32{3}),
		trace.New(nil),
	}
	arena := &Arena{}
	for ti, tr := range traces {
		for _, wmax := range []int{2, 5, DefaultWMax} {
			buffered := BuildHierarchy(tr, Options{WMax: wmax, Workers: 1})
			for _, workers := range []int{1, 4} {
				for _, span := range []int{150, 1 << 20} {
					opt := Options{WMax: wmax, Workers: workers, Arena: arena, FeedShardSpan: span}
					for _, chunk := range []int{1, 37, 1024} {
						h := feedInChunks(t, tr, opt, chunk)
						if !reflect.DeepEqual(h.Levels, buffered.Levels) {
							t.Fatalf("trace %d wmax=%d workers=%d span=%d chunk=%d: streamed hierarchy differs",
								ti, wmax, workers, span, chunk)
						}
						if !reflect.DeepEqual(h.Sequence(), buffered.Sequence()) {
							t.Fatalf("trace %d wmax=%d workers=%d span=%d chunk=%d: streamed sequence differs",
								ti, wmax, workers, span, chunk)
						}
					}
				}
			}
		}
	}
}

// TestFeederUntrimmedInput: the feeder trims across chunk boundaries —
// a run of one symbol split over many Feed calls collapses exactly as
// the buffered path's up-front Trimmed() does.
func TestFeederUntrimmedInput(t *testing.T) {
	syms := []int32{4, 4, 4, 1, 1, 2, 2, 2, 2, 1, 4, 4}
	tr := trace.New(syms)
	buffered := BuildHierarchy(tr, Options{WMax: 3, Workers: 1})
	for chunk := 1; chunk <= len(syms); chunk++ {
		h := feedInChunks(t, tr, Options{WMax: 3, Workers: 2, FeedShardSpan: 2}, chunk)
		if !reflect.DeepEqual(h.Levels, buffered.Levels) {
			t.Fatalf("chunk=%d: untrimmed streamed hierarchy differs", chunk)
		}
	}
}

// TestFeederLowDiversityTail: a trace whose tail never produces wmax
// distinct symbols after a cut leaves the cut pending until Finish; the
// result must still match the buffered build.
func TestFeederLowDiversityTail(t *testing.T) {
	syms := make([]int32, 0, 1200)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		syms = append(syms, int32(rng.Intn(30)))
	}
	for i := 0; i < 600; i++ { // two-symbol tail: never 5 distinct again
		syms = append(syms, int32(i%2))
	}
	tr := trace.New(syms)
	buffered := BuildHierarchy(tr, Options{WMax: 5, Workers: 1})
	h := feedInChunks(t, tr, Options{WMax: 5, Workers: 4, FeedShardSpan: 100}, 64)
	if !reflect.DeepEqual(h.Levels, buffered.Levels) {
		t.Fatal("low-diversity tail: streamed hierarchy differs from buffered")
	}
}

// TestFeederAbort: aborting mid-stream must drain cleanly (no panic, no
// deadlock) and leave the arena reusable.
func TestFeederAbort(t *testing.T) {
	arena := &Arena{}
	rng := rand.New(rand.NewSource(5))
	f := NewFeeder(context.Background(), Options{WMax: 4, Workers: 4, Arena: arena, FeedShardSpan: 64})
	chunk := make([]int32, 256)
	for i := 0; i < 8; i++ {
		for j := range chunk {
			chunk[j] = int32(rng.Intn(40))
		}
		if err := f.Feed(chunk); err != nil {
			t.Fatal(err)
		}
	}
	f.Abort()
	// The arena still serves a correct buffered build afterwards.
	tr := phasedTrace(rng, 1000, 100, 8)
	a := BuildHierarchy(tr, Options{WMax: 4, Workers: 4, Arena: arena})
	b := BuildHierarchy(tr, Options{WMax: 4, Workers: 1})
	if !reflect.DeepEqual(a.Levels, b.Levels) {
		t.Fatal("arena corrupted by aborted feeder")
	}
}

// TestFeederCancellation: canceling the feeder's context surfaces the
// error from Feed or Finish instead of wedging.
func TestFeederCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := NewFeeder(ctx, Options{WMax: 4, Workers: 4, FeedShardSpan: 64})
	cancel()
	chunk := make([]int32, 4096)
	for i := range chunk {
		chunk[i] = int32(i % 100)
	}
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		err = f.Feed(chunk)
	}
	if err == nil {
		_, err = f.Finish(context.Background())
	}
	if err == nil {
		t.Fatal("canceled feeder reported no error")
	}
	f.Abort()
}

// BenchmarkStreamFeed measures the feeder end-to-end on a phased trace,
// arena-recycled: the steady-state target is allocation-light dispatch
// (slab copies and pooled shard states only).
func BenchmarkStreamFeed(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	tr := phasedTrace(rng, 1<<17, 4096, 48)
	arena := &Arena{}
	opt := Options{WMax: DefaultWMax, Workers: 4, Arena: arena, FeedShardSpan: 1 << 14}
	// Warm the arena pools once.
	h := feedBench(b, tr, opt)
	_ = h
	b.SetBytes(int64(4 * len(tr.Syms)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feedBench(b, tr, opt)
	}
}

func feedBench(b *testing.B, tr *trace.Trace, opt Options) *Hierarchy {
	f := NewFeeder(context.Background(), opt)
	syms := tr.Syms
	for len(syms) > 0 {
		c := 8192
		if c > len(syms) {
			c = len(syms)
		}
		if err := f.Feed(syms[:c]); err != nil {
			b.Fatal(err)
		}
		syms = syms[c:]
	}
	h, err := f.Finish(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	return h
}
